package kernel

import (
	"time"

	"darkarts/internal/cpu"
	"darkarts/internal/obs"
)

// Histogram bucket bounds. Fixed at registration (see DESIGN.md,
// "Observability"): host-time latencies span 1µs..100ms, per-quantum
// instruction counts span idle..tens of millions, and window RSX counts
// bracket the paper's 2.5e9/min threshold.
//
//cryptojack:immutable
var (
	obsNsBuckets     = []uint64{1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000}
	obsInstBuckets   = []uint64{0, 10_000, 100_000, 500_000, 1_000_000, 2_000_000, 4_000_000, 8_000_000, 16_000_000}
	obsWindowBuckets = []uint64{1_000_000, 10_000_000, 100_000_000, 1_000_000_000, 2_500_000_000, 10_000_000_000}
)

// kmetrics holds the kernel's pre-resolved observability handles plus the
// per-quantum scratch the scheduler phases communicate through. All
// handles are registered once at kernel construction, so the hot path
// never touches the registry lock; when Config.Obs is nil the kernel's om
// field is nil and every instrumentation site is one branch.
//
// Everything here is host-side telemetry (wall-clock timings, registry
// handles, per-quantum scratch): none of it is snapshot surface and none
// of it feeds simulation results.
//
//cryptojack:hostonly
type kmetrics struct {
	reg *obs.Registry

	// Scheduler phase timing (host wall clock).
	quanta         *obs.Counter
	parallelQuanta *obs.Counter
	execNs         *obs.Counter
	mergeWaitNs    *obs.Counter
	mergeNs        *obs.Counter
	mergeOverlapNs *obs.Counter

	// Per-core execute-phase breakdown.
	coreBusyNs  []*obs.Counter
	coreIdleNs  []*obs.Counter
	coreRetired []*obs.Counter
	tlbHits     []*obs.Counter
	tlbMisses   []*obs.Counter

	// Per-core basic-block translation cache counters (fast engine).
	bbHits          []*obs.Counter
	bbMisses        []*obs.Counter
	bbInvalidations []*obs.Counter
	bbLen           *obs.Histogram

	// Per-core superblock trace cache counters (fast engine trace layer).
	trHits      []*obs.Counter
	trBuilds    []*obs.Counter
	trSideExits []*obs.Counter
	trDeopts    []*obs.Counter
	trLen       *obs.Histogram

	retiredPerQuantum *obs.Histogram

	// Context-switch RSX sampling (the paper's scheduler hook).
	samples      *obs.Counter
	rsxPerSwitch *obs.Histogram

	// Monitoring-window statistics.
	windows       *obs.Counter
	windowsOver   *obs.Counter
	windowsExempt *obs.Counter
	windowsStatic *obs.Counter
	windowRSX     *obs.Histogram

	// Alert pipeline.
	alertsProcess  *obs.Counter
	alertsSession  *obs.Counter
	alertLatencyNs *obs.Histogram

	tasksSpawned *obs.Counter
	tasksExited  *obs.Counter
	memPages     *obs.Gauge

	// Per-quantum scratch. coreBusy[i] is written only by whichever
	// goroutine claimed core i during execute (or the serial loop) and
	// read in the merge phase, so the plan→execute→merge barriers order
	// all accesses.
	coreBusy      []time.Duration
	retiredLast   []uint64
	tlbHitsLast   []uint64
	tlbMissesLast []uint64
	bbLast        []cpu.BBStats
	trLast        []cpu.TraceStats
	// crossTimes holds the host time of each threshold crossing this
	// quantum; latency is observed after alert callbacks are delivered.
	crossTimes []time.Time
}

func newKMetrics(reg *obs.Registry, cores int) *kmetrics {
	m := &kmetrics{
		reg: reg,
		quanta: reg.Counter(obs.Desc{Name: "sched_quanta_total", Layer: obs.LayerKernel,
			Unit: "quanta", Help: "scheduler quanta executed"}),
		parallelQuanta: reg.Counter(obs.Desc{Name: "sched_parallel_quanta_total", Layer: obs.LayerKernel,
			Unit: "quanta", Help: "quanta executed on per-core worker goroutines"}),
		execNs: reg.Counter(obs.Desc{Name: "sched_exec_ns_total", Layer: obs.LayerKernel,
			Unit: "ns", Help: "host time in the execute phase (all cores in flight)"}),
		mergeWaitNs: reg.Counter(obs.Desc{Name: "sched_merge_wait_ns_total", Layer: obs.LayerKernel,
			Unit: "ns", Help: "host time the scheduler blocked at the merge barrier"}),
		mergeNs: reg.Counter(obs.Desc{Name: "sched_merge_ns_total", Layer: obs.LayerKernel,
			Unit: "ns", Help: "host time in the deterministic merge phase"}),
		mergeOverlapNs: reg.Counter(obs.Desc{Name: "sched_merge_overlap_ns_total", Layer: obs.LayerKernel,
			Unit: "ns", Help: "merge-phase host time hidden inside the next quantum's execute window"}),
		bbLen: reg.Histogram(obs.Desc{Name: "bb_insts_per_block", Layer: obs.LayerCPU,
			Unit: "instructions", Help: "instructions retired per basic-block dispatch (fast engine)"}, cpu.BBLenBounds),
		trLen: reg.Histogram(obs.Desc{Name: "trace_insts_per_pass", Layer: obs.LayerCPU,
			Unit: "instructions", Help: "guest instructions retired per completed superblock trace pass"}, cpu.TraceLenBounds),
		retiredPerQuantum: reg.Histogram(obs.Desc{Name: "sched_retired_per_quantum", Layer: obs.LayerKernel,
			Unit: "instructions", Help: "instructions retired per core per quantum"}, obsInstBuckets),
		samples: reg.Counter(obs.Desc{Name: "rsx_samples_total", Layer: obs.LayerKernel,
			Unit: "samples", Help: "context-switch RSX counter samples (scheduler hook runs)"}),
		rsxPerSwitch: reg.Histogram(obs.Desc{Name: "rsx_delta_per_switch", Layer: obs.LayerKernel,
			Unit: "instructions", Help: "RSX instructions observed per context-switch sample"}, obsInstBuckets),
		windows: reg.Counter(obs.Desc{Name: "detect_windows_total", Layer: obs.LayerKernel,
			Unit: "windows", Help: "monitoring windows completed and checked"}),
		windowsOver: reg.Counter(obs.Desc{Name: "detect_windows_over_total", Layer: obs.LayerKernel,
			Unit: "windows", Help: "windows whose RSX count exceeded the threshold"}),
		windowsExempt: reg.Counter(obs.Desc{Name: "detect_windows_exempt_total", Layer: obs.LayerKernel,
			Unit: "windows", Help: "over-threshold windows suppressed by an exemption"}),
		windowsStatic: reg.Counter(obs.Desc{Name: "detect_windows_static_total", Layer: obs.LayerKernel,
			Unit: "windows", Help: "windows checked at the shortened static-prior period"}),
		windowRSX: reg.Histogram(obs.Desc{Name: "detect_window_rsx", Layer: obs.LayerKernel,
			Unit: "instructions", Help: "RSX instructions per completed monitoring window"}, obsWindowBuckets),
		alertsProcess: reg.Counter(obs.Desc{Name: "alerts_total", Label: obs.Label("scope", "process"),
			Layer: obs.LayerKernel, Unit: "alerts", Help: "alerts raised, by aggregation scope"}),
		alertsSession: reg.Counter(obs.Desc{Name: "alerts_total", Label: obs.Label("scope", "session"),
			Layer: obs.LayerKernel, Unit: "alerts", Help: "alerts raised, by aggregation scope"}),
		alertLatencyNs: reg.Histogram(obs.Desc{Name: "alert_latency_ns", Layer: obs.LayerKernel,
			Unit: "ns", Help: "host latency from threshold crossing to alert emission"}, obsNsBuckets),
		tasksSpawned: reg.Counter(obs.Desc{Name: "tasks_spawned_total", Layer: obs.LayerKernel,
			Unit: "tasks", Help: "tasks ever spawned (processes, threads, children)"}),
		tasksExited: reg.Counter(obs.Desc{Name: "tasks_exited_total", Layer: obs.LayerKernel,
			Unit: "tasks", Help: "tasks that finished their workload and exited"}),
		memPages: reg.Gauge(obs.Desc{Name: "mem_pages", Layer: obs.LayerMem,
			Unit: "pages", Help: "4KB pages mapped in simulated physical memory"}),

		coreBusy:      make([]time.Duration, cores),
		retiredLast:   make([]uint64, cores),
		tlbHitsLast:   make([]uint64, cores),
		tlbMissesLast: make([]uint64, cores),
		bbLast:        make([]cpu.BBStats, cores),
		trLast:        make([]cpu.TraceStats, cores),
	}
	for i := 0; i < cores; i++ {
		label := obs.CoreLabel(i)
		m.coreBusyNs = append(m.coreBusyNs, reg.Counter(obs.Desc{
			Name: "sched_core_busy_ns_total", Label: label, Layer: obs.LayerKernel,
			Unit: "ns", Help: "execute-phase host time the core spent running slices"}))
		m.coreIdleNs = append(m.coreIdleNs, reg.Counter(obs.Desc{
			Name: "sched_core_idle_ns_total", Label: label, Layer: obs.LayerKernel,
			Unit: "ns", Help: "execute-phase host time the core sat idle (barrier skew or no work)"}))
		m.coreRetired = append(m.coreRetired, reg.Counter(obs.Desc{
			Name: "sched_core_retired_total", Label: label, Layer: obs.LayerKernel,
			Unit: "instructions", Help: "instructions retired by the core under scheduler quanta"}))
		m.tlbHits = append(m.tlbHits, reg.Counter(obs.Desc{
			Name: "tlb_hits_total", Label: label, Layer: obs.LayerCPU,
			Unit: "hits", Help: "per-core page-translation cache hits"}))
		m.tlbMisses = append(m.tlbMisses, reg.Counter(obs.Desc{
			Name: "tlb_misses_total", Label: label, Layer: obs.LayerCPU,
			Unit: "misses", Help: "per-core page-translation cache misses (shared page-table walks)"}))
		m.bbHits = append(m.bbHits, reg.Counter(obs.Desc{
			Name: "bb_hits_total", Label: label, Layer: obs.LayerCPU,
			Unit: "blocks", Help: "basic-block translation cache hits (fast engine)"}))
		m.bbMisses = append(m.bbMisses, reg.Counter(obs.Desc{
			Name: "bb_misses_total", Label: label, Layer: obs.LayerCPU,
			Unit: "blocks", Help: "basic-block translation cache misses (blocks decoded and cached)"}))
		m.bbInvalidations = append(m.bbInvalidations, reg.Counter(obs.Desc{
			Name: "bb_invalidations_total", Label: label, Layer: obs.LayerCPU,
			Unit: "invalidations", Help: "per-program basic-block cache retags after tag-table generation changes"}))
		m.trHits = append(m.trHits, reg.Counter(obs.Desc{
			Name: "trace_hits_total", Label: label, Layer: obs.LayerCPU,
			Unit: "passes", Help: "superblock trace passes completed without a side exit"}))
		m.trBuilds = append(m.trBuilds, reg.Counter(obs.Desc{
			Name: "trace_builds_total", Label: label, Layer: obs.LayerCPU,
			Unit: "builds", Help: "superblock trace build attempts (hot-block promotions)"}))
		m.trSideExits = append(m.trSideExits, reg.Counter(obs.Desc{
			Name: "trace_side_exits_total", Label: label, Layer: obs.LayerCPU,
			Unit: "exits", Help: "trace passes abandoned mid-stream (state rolled back, replayed interpretively)"}))
		m.trDeopts = append(m.trDeopts, reg.Counter(obs.Desc{
			Name: "trace_deopts_total", Label: label, Layer: obs.LayerCPU,
			Unit: "deopts", Help: "traces discarded because side exits dominated completed passes"}))
	}
	return m
}

// beginQuantum resets the per-quantum execute-phase scratch.
func (m *kmetrics) beginQuantum() {
	for i := range m.coreBusy {
		m.coreBusy[i] = 0
	}
}

// observeQuantum folds one completed quantum into the registry: phase
// timings, per-core busy/idle split, retired-instruction and TLB deltas
// sampled from the hardware counter banks, and the memory footprint. It
// runs in the merge phase, under the kernel lock, after the execute
// barrier — so every per-core value is stable.
func (m *kmetrics) observeQuantum(k *Kernel, parallel bool, execWindow, mergeDur time.Duration) {
	m.quanta.Inc()
	if parallel {
		m.parallelQuanta.Inc()
	}
	m.execNs.Add(uint64(execWindow))
	m.mergeNs.Add(uint64(mergeDur))
	for i := range m.coreBusyNs {
		busy := m.coreBusy[i]
		m.coreBusyNs[i].Add(uint64(busy))
		if idle := execWindow - busy; idle > 0 {
			m.coreIdleNs[i].Add(uint64(idle))
		}
		core := k.machine.Core(i)
		retired := core.Counters().Retired()
		d := retired - m.retiredLast[i]
		m.retiredLast[i] = retired
		m.coreRetired[i].Add(d)
		m.retiredPerQuantum.Observe(d)
		hits, misses := core.TLBStats()
		m.tlbHits[i].Add(hits - m.tlbHitsLast[i])
		m.tlbMisses[i].Add(misses - m.tlbMissesLast[i])
		m.tlbHitsLast[i], m.tlbMissesLast[i] = hits, misses

		bb := core.BlockCacheStats()
		prev := &m.bbLast[i]
		m.bbHits[i].Add(bb.Hits - prev.Hits)
		m.bbMisses[i].Add(bb.Misses - prev.Misses)
		m.bbInvalidations[i].Add(bb.Invalidations - prev.Invalidations)
		var lenDelta [len(bb.LenCounts)]uint64
		for b := range bb.LenCounts {
			lenDelta[b] = bb.LenCounts[b] - prev.LenCounts[b]
		}
		m.bbLen.AddBuckets(lenDelta[:], bb.LenSum-prev.LenSum)
		*prev = bb

		tr := core.TraceCacheStats()
		trPrev := &m.trLast[i]
		m.trHits[i].Add(tr.Hits - trPrev.Hits)
		m.trBuilds[i].Add(tr.Misses - trPrev.Misses)
		m.trSideExits[i].Add(tr.SideExits - trPrev.SideExits)
		m.trDeopts[i].Add(tr.Deopts - trPrev.Deopts)
		var trLenDelta [len(tr.LenCounts)]uint64
		for b := range tr.LenCounts {
			trLenDelta[b] = tr.LenCounts[b] - trPrev.LenCounts[b]
		}
		m.trLen.AddBuckets(trLenDelta[:], tr.LenSum-trPrev.LenSum)
		*trPrev = tr
	}
	m.memPages.Set(int64(k.machine.Memory().Pages()))
}

// observeAlertLatency records threshold-crossing → emission latency for
// every alert of the just-completed quantum. It runs after the OnAlert
// callbacks, outside the kernel lock, on the single Run driver goroutine
// (the only writer of crossTimes).
func (m *kmetrics) observeAlertLatency() {
	if len(m.crossTimes) == 0 {
		return
	}
	//lint:ignore determinism host wall clock feeds the alert-latency metric only, never simulation state
	now := time.Now()
	for _, t0 := range m.crossTimes {
		m.alertLatencyNs.Observe(uint64(now.Sub(t0)))
	}
	m.crossTimes = m.crossTimes[:0]
}

// traceTask records a spawn/exit event and bumps the matching counter.
// Called under the kernel lock.
//
//cryptojack:locked
func (k *Kernel) traceTask(kind obs.EventKind, t *Task) {
	if k.om == nil {
		return
	}
	switch kind {
	case obs.EvTaskSpawn:
		k.om.tasksSpawned.Inc()
	case obs.EvTaskExit:
		k.om.tasksExited.Inc()
	default:
		// Other event kinds are recorded but have no dedicated counter.
	}
	k.om.reg.Tracer().Record(obs.Event{Time: k.now, Kind: kind, Arg: uint64(t.Pid), Note: t.Name})
}
