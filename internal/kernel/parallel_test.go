package kernel_test

// Differential and edge-case tests for the parallel scheduler: every
// scenario is run twice, once with Parallel off and once on, on two
// independently constructed machines, and the observable outputs must be
// bit-identical (see DESIGN.md, "Determinism and concurrency model").
// The concurrent-accessor test is the -race companion for the
// copy-on-read accessors.

import (
	"reflect"
	"sync"
	"testing"
	"time"

	"darkarts/internal/cpu"
	"darkarts/internal/isa"
	"darkarts/internal/kernel"
	"darkarts/internal/miner"
	"darkarts/internal/obs"
	"darkarts/internal/workload"
)

// newTestKernel builds a fresh 4-core fast-mode machine plus kernel with a
// short monitoring window so alert paths are exercised quickly.
func newTestKernel(t testing.TB, parallel bool) *kernel.Kernel {
	t.Helper()
	machine, err := cpu.New(cpu.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	kcfg := kernel.DefaultConfig()
	kcfg.Parallel = parallel
	kcfg.Tunables.Period = 2 * time.Second
	return kernel.New(machine, kcfg)
}

// spinProgram is a small ALU loop that never halts: a CPU-bound,
// RSX-heavy ISA workload with zero restart overhead.
func spinProgram() *isa.Program {
	b := isa.NewBuilder("spin")
	b.Movi(isa.R1, 0x7f4a7c15)
	b.Label("loop")
	b.Op3(isa.XOR, isa.R2, isa.R2, isa.R1)
	b.OpI(isa.RORI, isa.R2, isa.R2, 13)
	b.OpI(isa.SHRI, isa.R3, isa.R2, 7)
	b.OpI(isa.ADDI, isa.R4, isa.R4, 1)
	b.Jmp("loop")
	return b.MustBuild()
}

// populate spawns the same mixed scenario on any kernel: interactive
// apps, a multi-threaded throttled miner, and a real ISA program. All
// workload randomness is seeded per profile, so two kernels populated
// this way execute identical instruction streams.
func populate(t testing.TB, k *kernel.Kernel) {
	t.Helper()
	for _, app := range workload.TableIIApps()[:4] {
		k.Spawn(app.Name, 1000, workload.NewAppWorkload(app))
	}
	miner.SpawnMiner(k, miner.Monero, 0.3, 3, 1000)
	w, err := kernel.NewISAWorkload(spinProgram(), k.Machine().Memory(), 0x200_0000, 50_000_000)
	if err != nil {
		t.Fatal(err)
	}
	w.Loop = true
	k.Spawn("spin", 1000, w)
}

// snapshot captures every externally observable output of a run.
type snapshot struct {
	Now     time.Duration
	Samples uint64
	Alerts  []kernel.Alert
	RSX     []uint64 // per-task thread-group totals, task order
	Sess    []uint64 // per-task session totals, task order
	Exited  []bool
}

func snap(k *kernel.Kernel) snapshot {
	s := snapshot{Now: k.Now(), Samples: k.Samples(), Alerts: k.Alerts()}
	for _, task := range k.Tasks() {
		s.RSX = append(s.RSX, task.RSX().RSXCount())
		s.Sess = append(s.Sess, task.Session().RSXCount())
		s.Exited = append(s.Exited, task.Exited())
	}
	return s
}

func requireIdentical(t *testing.T, serial, parallel snapshot) {
	t.Helper()
	if !reflect.DeepEqual(serial.Alerts, parallel.Alerts) {
		t.Errorf("alert streams differ:\nserial:   %+v\nparallel: %+v", serial.Alerts, parallel.Alerts)
	}
	if serial.Now != parallel.Now {
		t.Errorf("clocks differ: serial %v parallel %v", serial.Now, parallel.Now)
	}
	if serial.Samples != parallel.Samples {
		t.Errorf("sample counts differ: serial %d parallel %d", serial.Samples, parallel.Samples)
	}
	if !reflect.DeepEqual(serial.RSX, parallel.RSX) {
		t.Errorf("per-tgid RSX totals differ:\nserial:   %v\nparallel: %v", serial.RSX, parallel.RSX)
	}
	if !reflect.DeepEqual(serial.Sess, parallel.Sess) {
		t.Errorf("session totals differ:\nserial:   %v\nparallel: %v", serial.Sess, parallel.Sess)
	}
	if !reflect.DeepEqual(serial.Exited, parallel.Exited) {
		t.Errorf("exit states differ:\nserial:   %v\nparallel: %v", serial.Exited, parallel.Exited)
	}
}

// TestParallelMatchesSerial is the differential proof: the same mixed
// scenario (apps + miner threads + ISA program) run serial and parallel
// must yield byte-identical alert streams and equal counter totals.
func TestParallelMatchesSerial(t *testing.T) {
	run := func(parallel bool) snapshot {
		k := newTestKernel(t, parallel)
		populate(t, k)
		if got := k.ParallelActive(); got != parallel {
			t.Fatalf("ParallelActive() = %v, want %v", got, parallel)
		}
		k.Run(5 * time.Second)
		return snap(k)
	}
	serial := run(false)
	par := run(true)
	if len(serial.Alerts) == 0 {
		t.Fatal("scenario raised no alerts; differential test is vacuous")
	}
	requireIdentical(t, serial, par)
}

// TestParallelZeroRunnableTasks: an empty kernel must advance time
// without work, alerts, or panics in both modes.
func TestParallelZeroRunnableTasks(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		k := newTestKernel(t, parallel)
		k.Run(100 * time.Millisecond)
		if now := k.Now(); now != 100*time.Millisecond {
			t.Errorf("parallel=%v: Now() = %v, want 100ms", parallel, now)
		}
		if n := k.Samples(); n != 0 {
			t.Errorf("parallel=%v: %d samples on an idle kernel", parallel, n)
		}
		if a := k.Alerts(); len(a) != 0 {
			t.Errorf("parallel=%v: unexpected alerts %v", parallel, a)
		}
	}
}

// TestParallelMoreTasksThanCores: 8 CPU-bound tasks on 4 cores must all
// make progress, round-robin, with identical totals in both modes.
func TestParallelMoreTasksThanCores(t *testing.T) {
	const tasks = 8
	run := func(parallel bool) snapshot {
		k := newTestKernel(t, parallel)
		for i := 0; i < tasks; i++ {
			rsxPerSlice := uint64(1000 * (i + 1))
			k.Spawn("cpu-bound", 1000, &kernel.FuncWorkload{
				F: func(core *cpu.Core, d time.Duration) bool {
					core.Counters().AddRSX(rsxPerSlice)
					return false
				},
			})
		}
		k.Run(400 * time.Millisecond)
		return snap(k)
	}
	serial := run(false)
	par := run(true)
	requireIdentical(t, serial, par)
	for i, rsx := range serial.RSX {
		if rsx == 0 {
			t.Errorf("task %d was starved (0 RSX) with %d tasks on 4 cores", i, tasks)
		}
	}
}

// TestParallelTaskExitsMidRun: a workload finishing partway through a run
// must exit exactly once, at the same quantum, in both modes.
func TestParallelTaskExitsMidRun(t *testing.T) {
	run := func(parallel bool) snapshot {
		k := newTestKernel(t, parallel)
		slices := 0
		k.Spawn("short-lived", 1000, &kernel.FuncWorkload{
			F: func(core *cpu.Core, d time.Duration) bool {
				core.Counters().AddRSX(500)
				slices++
				return slices >= 3
			},
		})
		k.Spawn("daemon", 1000, &kernel.FuncWorkload{
			F: func(core *cpu.Core, d time.Duration) bool {
				core.Counters().AddRSX(100)
				return false
			},
		})
		k.Run(100 * time.Millisecond)
		if slices != 3 {
			t.Errorf("parallel=%v: short-lived task ran %d slices, want 3", parallel, slices)
		}
		return snap(k)
	}
	serial := run(false)
	par := run(true)
	requireIdentical(t, serial, par)
	if !serial.Exited[0] {
		t.Error("short-lived task did not exit")
	}
	if serial.Exited[1] {
		t.Error("daemon task exited unexpectedly")
	}
	if want := uint64(3 * 500); serial.RSX[0] != want {
		t.Errorf("short-lived task RSX = %d, want %d (no lost or extra slices)", serial.RSX[0], want)
	}
}

// TestRunUntilAlertExactQuantum: RunUntilAlert must return on the exact
// quantum the alert fires — same clock in both modes, the alert already
// visible, and no duplicate when the run continues.
func TestRunUntilAlertExactQuantum(t *testing.T) {
	run := func(parallel bool) (*kernel.Kernel, snapshot) {
		k := newTestKernel(t, parallel)
		miner.SpawnMiner(k, miner.Monero, 0, 4, 1000)
		if !k.RunUntilAlert(time.Minute) {
			t.Fatalf("parallel=%v: full-speed miner raised no alert", parallel)
		}
		return k, snap(k)
	}
	sk, serial := run(false)
	pk, par := run(true)
	requireIdentical(t, serial, par)
	if n := len(serial.Alerts); n == 0 {
		t.Fatal("no alerts after RunUntilAlert returned true")
	}
	last := serial.Alerts[len(serial.Alerts)-1]
	if last.Time != serial.Now {
		t.Errorf("returned %v after the alerting quantum at %v (late return)", serial.Now, last.Time)
	}
	// Continuing must not re-deliver or lose the boundary alert.
	before := len(serial.Alerts)
	sk.Run(sk.Tunables().Period)
	pk.Run(pk.Tunables().Period)
	requireIdentical(t, snap(sk), snap(pk))
	if got := len(sk.Alerts()); got <= before {
		t.Errorf("no further alerts after another full window (got %d, had %d)", got, before)
	}
}

// TestAccessorsDuringRun hammers every copy-on-read accessor from another
// goroutine while a parallel simulation runs; it exists to fail under
// `go test -race` if the accessors and the merge phase ever stop sharing
// a lock.
func TestAccessorsDuringRun(t *testing.T) {
	k := newTestKernel(t, true)
	populate(t, k)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			_ = k.Alerts()
			_ = k.Samples()
			_ = k.Now()
			_ = k.Tunables()
			_ = k.TopRSX()
			_ = k.SampleOverheadCycles()
			for _, task := range k.Tasks() {
				_ = task.RSX().RSXCount()
			}
			if _, err := k.ProcFS().Read(kernel.ProcThreshold); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	k.Run(3 * time.Second)
	close(stop)
	wg.Wait()
	if len(k.Alerts()) == 0 {
		t.Error("scenario raised no alerts")
	}
}

// BenchmarkParallelQuantum measures the scheduler's quantum throughput
// with four CPU-bound ISA tasks saturating all four cores: the workload
// mix where the parallel execute phase has the most to win. Compare the
// serial and parallel MIPS figures; on a >=4-core host the target is
// >=2.5x (on fewer cores the parallel path degrades toward serial).
func BenchmarkParallelQuantum(b *testing.B) {
	for _, mode := range []struct {
		name     string
		parallel bool
	}{{"Serial", false}, {"Parallel", true}} {
		b.Run(mode.name, func(b *testing.B) {
			k := newTestKernel(b, mode.parallel)
			const cores = 4
			for i := 0; i < cores; i++ {
				w, err := kernel.NewISAWorkload(
					spinProgram(), k.Machine().Memory(),
					0x100_0000+uint64(i)<<22, 250_000_000)
				if err != nil {
					b.Fatal(err)
				}
				w.Loop = true
				k.Spawn("spin", 1000, w)
			}
			slice := 4 * time.Millisecond
			b.ResetTimer()
			k.Run(time.Duration(b.N) * slice)
			b.StopTimer()
			var retired uint64
			for i := 0; i < k.Machine().Cores(); i++ {
				retired += k.Machine().Core(i).Counters().Retired()
			}
			b.ReportMetric(float64(retired)/b.Elapsed().Seconds()/1e6, "MIPS")
			// Observability read-outs: what fraction of the execute window
			// the cores spent running slices, and how long the merge barrier
			// waited per quantum. These are the diagnosis metrics for the
			// serial-vs-parallel gap; see OBSERVABILITY.md.
			reg := k.Obs()
			var busy, idle float64
			for i := 0; i < k.Machine().Cores(); i++ {
				v, _ := reg.Value("sched_core_busy_ns_total", obs.CoreLabel(i))
				busy += v
				v, _ = reg.Value("sched_core_idle_ns_total", obs.CoreLabel(i))
				idle += v
			}
			if busy+idle > 0 {
				b.ReportMetric(busy/(busy+idle), "busy_frac")
			}
			quanta, _ := reg.Value("sched_quanta_total", "")
			wait, _ := reg.Value("sched_merge_wait_ns_total", "")
			overlap, _ := reg.Value("sched_merge_overlap_ns_total", "")
			if quanta > 0 {
				b.ReportMetric(wait/quanta/1e3, "merge_wait_us/q")
				b.ReportMetric(overlap/quanta/1e3, "merge_overlap_us/q")
			}
		})
	}
}
