package isa

import (
	"fmt"
	"sort"
	"strconv"
	"strings"
)

// Assemble parses textual assembly into a Program. The syntax matches what
// Disassemble emits, so the two round-trip:
//
//	; comments run to end of line
//	.name  keccak            ; optional program name
//	.data  4096              ; zero-initialised data bytes
//	start:
//	    MOVI r1, 42
//	    XOR  r2, r1, r1
//	    LD   r3, [r28+16]
//	    ST   [r28+24], r3
//	    CMPI r1, 0
//	    JNE  start
//	    HALT
//
// Registers are r0..r31 (sp/fp aliases accepted). Branch targets are
// labels. Immediates are decimal or 0x-hex, optionally negative.
func Assemble(src string) (*Program, error) {
	b := NewBuilder("asm")
	var dataSize int64

	lines := strings.Split(src, "\n")
	for ln, raw := range lines {
		line := raw
		if i := strings.IndexByte(line, ';'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fail := func(format string, args ...any) error {
			return fmt.Errorf("asm line %d: %s", ln+1, fmt.Sprintf(format, args...))
		}

		// Directives.
		if strings.HasPrefix(line, ".") {
			fields := strings.Fields(line)
			switch fields[0] {
			case ".name":
				if len(fields) != 2 {
					return nil, fail(".name wants one argument")
				}
				b = renameBuilder(b, fields[1])
			case ".data":
				if len(fields) != 2 {
					return nil, fail(".data wants one argument")
				}
				n, err := parseImm(fields[1])
				if err != nil || n < 0 {
					return nil, fail("bad .data size %q", fields[1])
				}
				dataSize = n
			default:
				return nil, fail("unknown directive %s", fields[0])
			}
			continue
		}

		// Labels (possibly followed by an instruction on the same line).
		for {
			if i := strings.IndexByte(line, ':'); i >= 0 && !strings.ContainsAny(line[:i], " \t,[") {
				b.Label(line[:i])
				line = strings.TrimSpace(line[i+1:])
				continue
			}
			break
		}
		if line == "" {
			continue
		}

		if err := assembleInst(b, line); err != nil {
			return nil, fail("%v", err)
		}
	}
	p, err := b.Build()
	if err != nil {
		return nil, err
	}
	p.DataSize = dataSize
	return p, nil
}

// renameBuilder rebuilds the builder under a new name (only legal before
// any instruction was emitted).
func renameBuilder(b *Builder, name string) *Builder {
	if b.Len() == 0 {
		nb := NewBuilder(name)
		return nb
	}
	b.name = name
	return b
}

// opByName resolves a mnemonic.
func opByName(name string) (Op, bool) {
	for _, op := range AllOps() {
		if op.String() == strings.ToUpper(name) {
			return op, true
		}
	}
	return OpInvalid, false
}

func parseReg(tok string) (Reg, error) {
	switch strings.ToLower(tok) {
	case "sp":
		return SP, nil
	case "fp":
		return FP, nil
	}
	if len(tok) >= 2 && (tok[0] == 'r' || tok[0] == 'R') {
		n, err := strconv.Atoi(tok[1:])
		if err == nil && n >= 0 && n < NumRegs {
			return Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", tok)
}

func parseImm(tok string) (int64, error) {
	return strconv.ParseInt(tok, 0, 64)
}

// parseMem parses "[rX+imm]" / "[rX-imm]" / "[rX]".
func parseMem(tok string) (Reg, int64, error) {
	if !strings.HasPrefix(tok, "[") || !strings.HasSuffix(tok, "]") {
		return 0, 0, fmt.Errorf("bad memory operand %q", tok)
	}
	inner := tok[1 : len(tok)-1]
	sep := strings.IndexAny(inner, "+-")
	if sep < 0 {
		r, err := parseReg(inner)
		return r, 0, err
	}
	r, err := parseReg(inner[:sep])
	if err != nil {
		return 0, 0, err
	}
	off, err := parseImm(inner[sep:])
	if err != nil {
		return 0, 0, fmt.Errorf("bad offset in %q", tok)
	}
	return r, off, nil
}

func assembleInst(b *Builder, line string) error {
	// Tokenize: mnemonic, then comma-separated operands.
	sp := strings.IndexAny(line, " \t")
	mnemonic := line
	rest := ""
	if sp >= 0 {
		mnemonic = line[:sp]
		rest = strings.TrimSpace(line[sp+1:])
	}
	op, ok := opByName(mnemonic)
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mnemonic)
	}
	var operands []string
	if rest != "" {
		for _, t := range strings.Split(rest, ",") {
			operands = append(operands, strings.TrimSpace(t))
		}
	}
	want := func(n int) error {
		if len(operands) != n {
			return fmt.Errorf("%s wants %d operands, got %d", op, n, len(operands))
		}
		return nil
	}

	switch {
	case op == NOP || op == HALT || op == RET:
		if err := want(0); err != nil {
			return err
		}
		b.Emit(Inst{Op: op})

	case op == MOVI:
		if err := want(2); err != nil {
			return err
		}
		rd, err := parseReg(operands[0])
		if err != nil {
			return err
		}
		imm, err := parseImm(operands[1])
		if err != nil {
			return err
		}
		b.Movi(rd, imm)

	case op == MOV || op == NOT || op == NEG:
		if err := want(2); err != nil {
			return err
		}
		rd, err := parseReg(operands[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(operands[1])
		if err != nil {
			return err
		}
		b.Emit(Inst{Op: op, Rd: rd, Rs1: rs})

	case op == INC || op == DEC:
		if err := want(1); err != nil {
			return err
		}
		rd, err := parseReg(operands[0])
		if err != nil {
			return err
		}
		b.Emit(Inst{Op: op, Rd: rd})

	case op == PUSH:
		if err := want(1); err != nil {
			return err
		}
		rs, err := parseReg(operands[0])
		if err != nil {
			return err
		}
		b.Push(rs)

	case op == POP:
		if err := want(1); err != nil {
			return err
		}
		rd, err := parseReg(operands[0])
		if err != nil {
			return err
		}
		b.Pop(rd)

	case op.Is(ClassLoad): // LD rd, [base+off]
		if err := want(2); err != nil {
			return err
		}
		rd, err := parseReg(operands[0])
		if err != nil {
			return err
		}
		base, off, err := parseMem(operands[1])
		if err != nil {
			return err
		}
		b.Emit(Inst{Op: op, Rd: rd, Rs1: base, Imm: off})

	case op.Is(ClassStore): // ST [base+off], rs
		if err := want(2); err != nil {
			return err
		}
		base, off, err := parseMem(operands[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(operands[1])
		if err != nil {
			return err
		}
		b.Emit(Inst{Op: op, Rs1: base, Imm: off, Rs2: rs})

	case op == CMP || op == TEST:
		if err := want(2); err != nil {
			return err
		}
		a, err := parseReg(operands[0])
		if err != nil {
			return err
		}
		c, err := parseReg(operands[1])
		if err != nil {
			return err
		}
		b.Emit(Inst{Op: op, Rs1: a, Rs2: c})

	case op == CMPI:
		if err := want(2); err != nil {
			return err
		}
		a, err := parseReg(operands[0])
		if err != nil {
			return err
		}
		imm, err := parseImm(operands[1])
		if err != nil {
			return err
		}
		b.Cmpi(a, imm)

	case op == JMP || op == CALL:
		if err := want(1); err != nil {
			return err
		}
		if op == JMP {
			b.Jmp(operands[0])
		} else {
			b.Call(operands[0])
		}

	case op.IsCondBranch():
		if err := want(1); err != nil {
			return err
		}
		b.Jcc(op, operands[0])

	case hasImmOperand(op): // rd, rs1, imm
		if err := want(3); err != nil {
			return err
		}
		rd, err := parseReg(operands[0])
		if err != nil {
			return err
		}
		rs, err := parseReg(operands[1])
		if err != nil {
			return err
		}
		imm, err := parseImm(operands[2])
		if err != nil {
			return err
		}
		b.OpI(op, rd, rs, imm)

	default: // rd, rs1, rs2
		if err := want(3); err != nil {
			return err
		}
		rd, err := parseReg(operands[0])
		if err != nil {
			return err
		}
		r1, err := parseReg(operands[1])
		if err != nil {
			return err
		}
		r2, err := parseReg(operands[2])
		if err != nil {
			return err
		}
		b.Op3(op, rd, r1, r2)
	}
	return nil
}

// Disassemble renders a program back to assembleable text. Branch targets
// become synthetic labels (or original symbol names where known).
func Disassemble(p *Program) string {
	// Collect label positions: program symbols plus branch targets. Symbol
	// names are applied in sorted order so that when several symbols share
	// an instruction index the rendered label is the same on every run.
	labels := map[int]string{}
	names := make([]string, 0, len(p.Symbols))
	for name := range p.Symbols {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		labels[p.Symbols[name]] = name
	}
	next := 0
	for _, in := range p.Code {
		if in.Op.IsBranch() && in.Op != RET {
			idx := int(in.Imm)
			if _, ok := labels[idx]; !ok {
				labels[idx] = fmt.Sprintf("L%d", next)
				next++
			}
		}
	}

	var b strings.Builder
	fmt.Fprintf(&b, ".name %s\n", sanitizeName(p.Name))
	if p.DataSize > 0 {
		fmt.Fprintf(&b, ".data %d\n", p.DataSize)
	}
	for i, in := range p.Code {
		if lbl, ok := labels[i]; ok {
			fmt.Fprintf(&b, "%s:\n", lbl)
		}
		if in.Op.IsBranch() && in.Op != RET {
			fmt.Fprintf(&b, "    %s %s\n", in.Op, labels[int(in.Imm)])
			continue
		}
		fmt.Fprintf(&b, "    %s\n", in.String())
	}
	return b.String()
}

func sanitizeName(n string) string {
	if n == "" {
		return "program"
	}
	return strings.ReplaceAll(n, " ", "_")
}
