// Package isa defines the x86-flavoured 64-bit instruction set executed by
// the simulated processor in internal/cpu.
//
// The ISA is a load/store register machine with 32 general purpose 64-bit
// registers and a small flags word. Opcode mnemonics follow x86 naming (MOV,
// XOR, SHL, ROR, ...) because the paper's defense keys on x86 opcode classes:
// rotates, shifts, exclusive-or, and (optionally) or — the "RSX"/"RSXO"
// instruction sets tracked by the hardware layer (Section IV-A, Table V).
package isa
