package isa

import (
	"fmt"
	"sort"
)

// Builder assembles a Program with symbolic labels. It is the "assembler"
// used by the hand-written crypto kernels in internal/cryptoalg and by the
// synthetic workload generators.
//
// Branch targets may reference labels that are defined later; they are
// resolved at Build time. Builder methods panic on misuse (unknown register
// etc.) only via Build's error return — the builder itself never panics.
type Builder struct {
	name   string
	code   []Inst
	labels map[string]int
	// fixups maps instruction index -> label for unresolved branch targets.
	fixups map[int]string
	errs   []error
}

// NewBuilder returns a Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:   name,
		labels: make(map[string]int),
		fixups: make(map[int]string),
	}
}

// Len returns the number of instructions emitted so far.
func (b *Builder) Len() int { return len(b.code) }

// Label defines a label at the current position. Redefinition is an error
// reported by Build.
func (b *Builder) Label(name string) *Builder {
	if _, dup := b.labels[name]; dup {
		b.errs = append(b.errs, fmt.Errorf("label %q redefined", name))
		return b
	}
	b.labels[name] = len(b.code)
	return b
}

// Emit appends a raw instruction.
func (b *Builder) Emit(in Inst) *Builder {
	b.code = append(b.code, in)
	return b
}

// Op3 emits a three-register-operand instruction: rd = rs1 <op> rs2.
func (b *Builder) Op3(op Op, rd, rs1, rs2 Reg) *Builder {
	return b.Emit(Inst{Op: op, Rd: rd, Rs1: rs1, Rs2: rs2})
}

// OpI emits a register-immediate instruction: rd = rs1 <op> imm.
func (b *Builder) OpI(op Op, rd, rs1 Reg, imm int64) *Builder {
	return b.Emit(Inst{Op: op, Rd: rd, Rs1: rs1, Imm: imm})
}

// Mov emits rd = rs.
func (b *Builder) Mov(rd, rs Reg) *Builder { return b.Emit(Inst{Op: MOV, Rd: rd, Rs1: rs}) }

// Movi emits rd = imm.
func (b *Builder) Movi(rd Reg, imm int64) *Builder {
	return b.Emit(Inst{Op: MOVI, Rd: rd, Imm: imm})
}

// Ld emits rd = mem64[base+off].
func (b *Builder) Ld(rd, base Reg, off int64) *Builder {
	return b.Emit(Inst{Op: LD, Rd: rd, Rs1: base, Imm: off})
}

// Ld8 emits rd = zeroext(mem8[base+off]).
func (b *Builder) Ld8(rd, base Reg, off int64) *Builder {
	return b.Emit(Inst{Op: LD8, Rd: rd, Rs1: base, Imm: off})
}

// Ld32 emits rd = zeroext(mem32[base+off]).
func (b *Builder) Ld32(rd, base Reg, off int64) *Builder {
	return b.Emit(Inst{Op: LD32, Rd: rd, Rs1: base, Imm: off})
}

// St emits mem64[base+off] = rs.
func (b *Builder) St(base Reg, off int64, rs Reg) *Builder {
	return b.Emit(Inst{Op: ST, Rs1: base, Imm: off, Rs2: rs})
}

// St8 emits mem8[base+off] = rs.
func (b *Builder) St8(base Reg, off int64, rs Reg) *Builder {
	return b.Emit(Inst{Op: ST8, Rs1: base, Imm: off, Rs2: rs})
}

// St32 emits mem32[base+off] = rs.
func (b *Builder) St32(base Reg, off int64, rs Reg) *Builder {
	return b.Emit(Inst{Op: ST32, Rs1: base, Imm: off, Rs2: rs})
}

// Push emits PUSH rs.
func (b *Builder) Push(rs Reg) *Builder { return b.Emit(Inst{Op: PUSH, Rs1: rs}) }

// Pop emits POP rd.
func (b *Builder) Pop(rd Reg) *Builder { return b.Emit(Inst{Op: POP, Rd: rd}) }

// Cmp emits CMP rs1, rs2.
func (b *Builder) Cmp(rs1, rs2 Reg) *Builder { return b.Emit(Inst{Op: CMP, Rs1: rs1, Rs2: rs2}) }

// Cmpi emits CMPI rs1, imm.
func (b *Builder) Cmpi(rs1 Reg, imm int64) *Builder {
	return b.Emit(Inst{Op: CMPI, Rs1: rs1, Imm: imm})
}

// Jmp emits an unconditional jump to a label.
func (b *Builder) Jmp(label string) *Builder { return b.branch(JMP, label) }

// Jcc emits a conditional jump to a label.
func (b *Builder) Jcc(op Op, label string) *Builder {
	if !op.IsCondBranch() {
		b.errs = append(b.errs, fmt.Errorf("Jcc: %s is not a conditional branch", op))
		return b
	}
	return b.branch(op, label)
}

// Call emits CALL label.
func (b *Builder) Call(label string) *Builder { return b.branch(CALL, label) }

// Ret emits RET.
func (b *Builder) Ret() *Builder { return b.Emit(Inst{Op: RET}) }

// Halt emits HALT.
func (b *Builder) Halt() *Builder { return b.Emit(Inst{Op: HALT}) }

// Nop emits NOP.
func (b *Builder) Nop() *Builder { return b.Emit(Inst{Op: NOP}) }

func (b *Builder) branch(op Op, label string) *Builder {
	idx := len(b.code)
	b.code = append(b.code, Inst{Op: op})
	b.fixups[idx] = label
	return b
}

// Build resolves labels and returns the validated program.
func (b *Builder) Build() (*Program, error) {
	if len(b.errs) > 0 {
		return nil, fmt.Errorf("assemble %q: %w", b.name, b.errs[0])
	}
	code := make([]Inst, len(b.code))
	copy(code, b.code)

	// Deterministic fixup order for reproducible error messages.
	idxs := make([]int, 0, len(b.fixups))
	for idx := range b.fixups {
		idxs = append(idxs, idx)
	}
	sort.Ints(idxs)
	for _, idx := range idxs {
		label := b.fixups[idx]
		target, ok := b.labels[label]
		if !ok {
			return nil, fmt.Errorf("assemble %q: undefined label %q at instruction %d", b.name, label, idx)
		}
		code[idx].Imm = int64(target)
	}

	// Copy the label table in sorted order: the copy itself is
	// order-insensitive, but keeping the sweep deterministic lets the
	// determinism analyzer vouch for the whole build path.
	symbols := make(map[string]int, len(b.labels))
	labelNames := make([]string, 0, len(b.labels))
	for k := range b.labels {
		labelNames = append(labelNames, k)
	}
	sort.Strings(labelNames)
	for _, k := range labelNames {
		symbols[k] = b.labels[k]
	}
	p := &Program{Name: b.name, Code: code, Symbols: symbols}
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return p, nil
}

// MustBuild is Build for static program construction in tests and kernels
// where assembly errors are programming bugs.
func (b *Builder) MustBuild() *Program {
	p, err := b.Build()
	if err != nil {
		panic(err)
	}
	return p
}
