package isa

import (
	"strings"
	"testing"
	"testing/quick"
)

func TestOpStringsUnique(t *testing.T) {
	seen := make(map[string]Op)
	for _, op := range AllOps() {
		s := op.String()
		if s == "" || strings.HasPrefix(s, "Op(") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
		if prev, dup := seen[s]; dup {
			t.Errorf("mnemonic %q shared by %d and %d", s, prev, op)
		}
		seen[s] = op
	}
}

func TestOpInvalid(t *testing.T) {
	if OpInvalid.Valid() {
		t.Error("OpInvalid.Valid() = true")
	}
	if got := OpInvalid.String(); got != "INVALID" {
		t.Errorf("OpInvalid.String() = %q", got)
	}
	if Op(200).Valid() {
		t.Error("Op(200).Valid() = true")
	}
	for _, op := range AllOps() {
		if !op.Valid() {
			t.Errorf("%s.Valid() = false", op)
		}
	}
}

func TestOpClasses(t *testing.T) {
	tests := []struct {
		op   Op
		want Class
	}{
		{ROL, ClassRotate}, {ROR, ClassRotate}, {ROLI, ClassRotate}, {RORI, ClassRotate},
		{SHL, ClassShift}, {SHR, ClassShift}, {SAR, ClassShift},
		{SHLI, ClassShift}, {SHRI, ClassShift}, {SARI, ClassShift},
		{XOR, ClassXor}, {XORI, ClassXor},
		{OR, ClassOr}, {ORI, ClassOr},
		{AND, ClassAnd}, {ANDI, ClassAnd},
		{LD, ClassLoad}, {LD8, ClassLoad}, {POP, ClassLoad},
		{ST, ClassStore}, {ST8, ClassStore}, {PUSH, ClassStore},
		{JMP, ClassBranch}, {CALL, ClassBranch}, {RET, ClassBranch},
		{ADD, ClassArith}, {MUL, ClassMulDiv}, {DIV, ClassMulDiv},
		{MOV, ClassMove}, {MOVI, ClassMove},
	}
	for _, tt := range tests {
		if !tt.op.Is(tt.want) {
			t.Errorf("%s.Is(%b) = false, classes = %b", tt.op, tt.want, tt.op.Classes())
		}
	}
}

func TestRSXClassesDisjoint(t *testing.T) {
	// An opcode must not be both a rotate and a shift: the RSX counter would
	// double count. Same for xor/or.
	for _, op := range AllOps() {
		c := op.Classes()
		if c&ClassRotate != 0 && c&ClassShift != 0 {
			t.Errorf("%s is both rotate and shift", op)
		}
		if c&ClassXor != 0 && c&ClassOr != 0 {
			t.Errorf("%s is both xor and or", op)
		}
	}
}

func TestCondBranchSubsetOfBranch(t *testing.T) {
	for _, op := range AllOps() {
		if op.IsCondBranch() && !op.IsBranch() {
			t.Errorf("%s: IsCondBranch but not IsBranch", op)
		}
	}
	if JMP.IsCondBranch() {
		t.Error("JMP.IsCondBranch() = true")
	}
	if !JNE.IsCondBranch() {
		t.Error("JNE.IsCondBranch() = false")
	}
}

func TestRegString(t *testing.T) {
	if got := R3.String(); got != "r3" {
		t.Errorf("R3.String() = %q", got)
	}
	if got := SP.String(); got != "sp" {
		t.Errorf("SP.String() = %q", got)
	}
	if got := FP.String(); got != "fp" {
		t.Errorf("FP.String() = %q", got)
	}
}

func TestInstString(t *testing.T) {
	tests := []struct {
		in   Inst
		want string
	}{
		{Inst{Op: XOR, Rd: R1, Rs1: R2, Rs2: R3}, "XOR r1, r2, r3"},
		{Inst{Op: MOVI, Rd: R4, Imm: 42}, "MOVI r4, 42"},
		{Inst{Op: LD, Rd: R1, Rs1: R2, Imm: 8}, "LD r1, [r2+8]"},
		{Inst{Op: ST, Rs1: R2, Imm: -8, Rs2: R1}, "ST [r2-8], r1"},
		{Inst{Op: PUSH, Rs1: R5}, "PUSH r5"},
		{Inst{Op: POP, Rd: R5}, "POP r5"},
		{Inst{Op: JNE, Imm: 12}, "JNE 12"},
		{Inst{Op: RET}, "RET"},
		{Inst{Op: CMP, Rs1: R1, Rs2: R2}, "CMP r1, r2"},
		{Inst{Op: RORI, Rd: R1, Rs1: R1, Imm: 13}, "RORI r1, r1, 13"},
		{Inst{Op: MOV, Rd: R1, Rs1: R2}, "MOV r1, r2"},
		{Inst{Op: INC, Rd: R9}, "INC r9"},
	}
	for _, tt := range tests {
		if got := tt.in.String(); got != tt.want {
			t.Errorf("String() = %q, want %q", got, tt.want)
		}
	}
}

func TestIsMem(t *testing.T) {
	for _, op := range []Op{LD, LD8, LD16, LD32, ST, ST8, ST16, ST32, PUSH, POP} {
		if !op.IsMem() {
			t.Errorf("%s.IsMem() = false", op)
		}
	}
	for _, op := range []Op{ADD, XOR, JMP, MOV, LEA} {
		if op.IsMem() {
			t.Errorf("%s.IsMem() = true", op)
		}
	}
}

func TestAllOpsCount(t *testing.T) {
	ops := AllOps()
	if len(ops) != NumOps-1 {
		t.Errorf("AllOps() returned %d ops, want %d", len(ops), NumOps-1)
	}
}

func TestOpStringTotal(t *testing.T) {
	// Property: String never returns the fallback for valid ops, always the
	// fallback for invalid ones.
	f := func(raw uint8) bool {
		op := Op(raw)
		s := op.String()
		if op.Valid() {
			return !strings.HasPrefix(s, "Op(") && s != "INVALID"
		}
		return s == "INVALID" || strings.HasPrefix(s, "Op(")
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
