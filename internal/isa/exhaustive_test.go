// The runtime twin of the exhaustivedecode analyzer: the static check
// proves every switch over Op handles every opcode, and this test proves
// the data tables do too — every opcode has a mnemonic, every opcode is
// either classified or on the explicit no-class list, and the RSX/RSXO
// tag tables decide every opcode exactly as the class masks say. A new
// opcode that misses a table fails here on the same commit that adds it.
package isa_test

import (
	"strings"
	"testing"

	"darkarts/internal/isa"
	"darkarts/internal/microcode"
)

// unclassified is the closed set of opcodes deliberately carrying no
// microarchitectural class: NOT is pure logic outside the tag families,
// NOP and HALT touch no data at all. Growing this list is a deliberate
// act, not a default.
var unclassified = map[isa.Op]bool{
	isa.NOT:  true,
	isa.NOP:  true,
	isa.HALT: true,
}

func TestEveryOpcodeNamed(t *testing.T) {
	seen := map[string]isa.Op{}
	for _, op := range isa.AllOps() {
		name := op.String()
		if name == "" || strings.HasPrefix(name, "Op(") {
			t.Errorf("opcode %d has no name-table entry (String() = %q)", uint8(op), name)
			continue
		}
		if prev, dup := seen[name]; dup {
			t.Errorf("opcodes %d and %d share the mnemonic %q", uint8(prev), uint8(op), name)
		}
		seen[name] = op
	}
	if got := isa.OpInvalid.String(); got != "INVALID" {
		t.Errorf("OpInvalid.String() = %q, want INVALID", got)
	}
}

func TestEveryOpcodeClassified(t *testing.T) {
	for _, op := range isa.AllOps() {
		classes := op.Classes()
		switch {
		case classes == isa.ClassNone && !unclassified[op]:
			t.Errorf("opcode %s has no classes and is not on the unclassified list: the class table misses it", op)
		case classes != isa.ClassNone && unclassified[op]:
			t.Errorf("opcode %s is on the unclassified list but has classes %#x", op, uint16(classes))
		}
	}
}

// TestEveryOpcodeAttributed pins the static attribute table (attr.go) to
// the class masks and the core.go interpreter semantics for the full
// opcode space, so a new opcode cannot ship without attributes:
//
//   - ReadsFlags exactly for conditional branches;
//   - WritesFlags exactly for the ALU families core.go routes through
//     addFlags/subFlags/logicFlags (arith, logic incl. NOT, shifts,
//     rotates, compares);
//   - Mem mirrors ClassLoad/ClassStore, plus the two branch opcodes that
//     move data through the stack (CALL stores the return index, RET
//     loads it);
//   - RSX agrees with the default firmware tag-set classes.
func TestEveryOpcodeAttributed(t *testing.T) {
	for _, op := range isa.AllOps() {
		a := op.Attr()

		if want := op.IsCondBranch(); a.ReadsFlags != want {
			t.Errorf("%s: ReadsFlags = %v, want %v (IsCondBranch)", op, a.ReadsFlags, want)
		}

		wantWrites := op.Is(isa.ClassArith|isa.ClassAnd|isa.ClassOr|isa.ClassXor|isa.ClassShift|isa.ClassRotate) || op == isa.NOT
		if a.WritesFlags != wantWrites {
			t.Errorf("%s: WritesFlags = %v, want %v (ALU families + NOT)", op, a.WritesFlags, wantWrites)
		}

		wantMem := isa.MemNone
		switch {
		case op.Is(isa.ClassLoad) || op == isa.RET:
			wantMem = isa.MemLoad
		case op.Is(isa.ClassStore) || op == isa.CALL:
			wantMem = isa.MemStore
		}
		if a.Mem != wantMem {
			t.Errorf("%s: Mem = %d, want %d", op, a.Mem, wantMem)
		}

		if want := op.Is(isa.ClassRotate | isa.ClassShift | isa.ClassXor); a.RSX != want {
			t.Errorf("%s: RSX = %v, want %v (class masks)", op, a.RSX, want)
		}

		if want := op == isa.JB || op == isa.JBE || op == isa.JA || op == isa.JAE; op.IsUnsignedCondBranch() != want {
			t.Errorf("%s: IsUnsignedCondBranch = %v, want %v", op, op.IsUnsignedCondBranch(), want)
		}
	}
	if a := isa.OpInvalid.Attr(); a != (isa.OpAttr{}) {
		t.Errorf("OpInvalid.Attr() = %+v, want the zero OpAttr", a)
	}
	if a := isa.Op(255).Attr(); a != (isa.OpAttr{}) {
		t.Errorf("out-of-range Attr() = %+v, want the zero OpAttr", a)
	}
}

// TestRSXClassificationCoversEveryOpcode pins the firmware tag tables to
// the class masks for the full opcode space: RSX tags exactly the
// rotate/shift/xor families, RSXO additionally the or family, and the
// reserved OpInvalid is tagged by neither.
func TestRSXClassificationCoversEveryOpcode(t *testing.T) {
	rsx, rsxo := microcode.RSX(), microcode.RSXO()
	for _, op := range isa.AllOps() {
		wantRSX := op.Is(isa.ClassRotate | isa.ClassShift | isa.ClassXor)
		if got := rsx.Tagged(op); got != wantRSX {
			t.Errorf("RSX.Tagged(%s) = %v, want %v", op, got, wantRSX)
		}
		wantRSXO := wantRSX || op.Is(isa.ClassOr)
		if got := rsxo.Tagged(op); got != wantRSXO {
			t.Errorf("RSXO.Tagged(%s) = %v, want %v", op, got, wantRSXO)
		}
	}
	if rsx.Tagged(isa.OpInvalid) || rsxo.Tagged(isa.OpInvalid) {
		t.Error("the reserved OpInvalid opcode must never be tagged")
	}
}
