package isa

import "fmt"

// Op identifies an instruction opcode.
type Op uint8

// Opcodes. The zero value is reserved so that an accidentally zeroed
// instruction is caught as illegal rather than silently executing.
const (
	OpInvalid Op = iota

	// Data movement.
	MOV  // MOV  rd, rs1        rd = rs1
	MOVI // MOVI rd, imm        rd = imm
	LD   // LD   rd, [rs1+imm]  64-bit load
	LD32 // LD32 rd, [rs1+imm]  32-bit zero-extending load
	LD16 // LD16 rd, [rs1+imm]  16-bit zero-extending load
	LD8  // LD8  rd, [rs1+imm]  8-bit zero-extending load
	ST   // ST   [rs1+imm], rs2 64-bit store
	ST32 // ST32 [rs1+imm], rs2 32-bit store
	ST16 // ST16 [rs1+imm], rs2 16-bit store
	ST8  // ST8  [rs1+imm], rs2 8-bit store
	PUSH // PUSH rs1            SP -= 8; [SP] = rs1
	POP  // POP  rd             rd = [SP]; SP += 8
	LEA  // LEA  rd, [rs1+imm]  rd = rs1 + imm (address arithmetic)

	// Integer arithmetic.
	ADD  // ADD  rd, rs1, rs2
	ADDI // ADDI rd, rs1, imm
	SUB  // SUB  rd, rs1, rs2
	SUBI // SUBI rd, rs1, imm
	MUL  // MUL  rd, rs1, rs2   low 64 bits of unsigned product
	IMUL // IMUL rd, rs1, rs2   low 64 bits of signed product
	DIV  // DIV  rd, rs1, rs2   unsigned quotient (rs2 == 0 faults)
	MOD  // MOD  rd, rs1, rs2   unsigned remainder (rs2 == 0 faults)
	NEG  // NEG  rd, rs1
	INC  // INC  rd
	DEC  // DEC  rd

	// Bitwise logic.
	AND  // AND  rd, rs1, rs2
	ANDI // ANDI rd, rs1, imm
	OR   // OR   rd, rs1, rs2
	ORI  // ORI  rd, rs1, imm
	XOR  // XOR  rd, rs1, rs2
	XORI // XORI rd, rs1, imm
	NOT  // NOT  rd, rs1

	// Shifts and rotates (the heart of the RSX tag set).
	SHL  // SHL  rd, rs1, rs2   logical shift left
	SHLI // SHLI rd, rs1, imm
	SHR  // SHR  rd, rs1, rs2   logical shift right
	SHRI // SHRI rd, rs1, imm
	SAR  // SAR  rd, rs1, rs2   arithmetic shift right
	SARI // SARI rd, rs1, imm
	ROL  // ROL  rd, rs1, rs2   rotate left
	ROLI // ROLI rd, rs1, imm
	ROR  // ROR  rd, rs1, rs2   rotate right
	RORI // RORI rd, rs1, imm
	// 32-bit rotates (x86 "rol/ror r32"): rotate the low 32 bits of rs1 and
	// zero-extend. Compilers emit these heavily in SHA-2 code.
	ROL32I // ROL32I rd, rs1, imm
	ROR32I // ROR32I rd, rs1, imm

	// Compare and test (set flags only).
	CMP  // CMP  rs1, rs2
	CMPI // CMPI rs1, imm
	TEST // TEST rs1, rs2       flags from rs1 & rs2

	// Control flow. Branch targets are instruction indices (Imm).
	JMP  // JMP  target
	JE   // JE   target          ZF == 1
	JNE  // JNE  target          ZF == 0
	JL   // JL   target          signed less
	JLE  // JLE  target          signed less-or-equal
	JG   // JG   target          signed greater
	JGE  // JGE  target          signed greater-or-equal
	JB   // JB   target          unsigned below
	JBE  // JBE  target          unsigned below-or-equal
	JA   // JA   target          unsigned above
	JAE  // JAE  target          unsigned above-or-equal
	CALL // CALL target         push return index, jump
	RET  // RET                 pop return index, jump

	// Miscellaneous.
	NOP
	HALT // stop the hardware context

	numOps // sentinel; must remain last
)

// NumOps is the number of defined opcodes including OpInvalid. Exposed so
// histogram consumers (internal/trace) can size dense arrays.
const NumOps = int(numOps)

//cryptojack:immutable
var opNames = [numOps]string{
	OpInvalid: "INVALID",
	MOV:       "MOV", MOVI: "MOVI",
	LD: "LD", LD32: "LD32", LD16: "LD16", LD8: "LD8",
	ST: "ST", ST32: "ST32", ST16: "ST16", ST8: "ST8",
	PUSH: "PUSH", POP: "POP", LEA: "LEA",
	ADD: "ADD", ADDI: "ADDI", SUB: "SUB", SUBI: "SUBI",
	MUL: "MUL", IMUL: "IMUL", DIV: "DIV", MOD: "MOD",
	NEG: "NEG", INC: "INC", DEC: "DEC",
	AND: "AND", ANDI: "ANDI", OR: "OR", ORI: "ORI",
	XOR: "XOR", XORI: "XORI", NOT: "NOT",
	SHL: "SHL", SHLI: "SHLI", SHR: "SHR", SHRI: "SHRI",
	SAR: "SAR", SARI: "SARI",
	ROL: "ROL", ROLI: "ROLI", ROR: "ROR", RORI: "RORI",
	ROL32I: "ROL32I", ROR32I: "ROR32I",
	CMP: "CMP", CMPI: "CMPI", TEST: "TEST",
	JMP: "JMP", JE: "JE", JNE: "JNE", JL: "JL", JLE: "JLE",
	JG: "JG", JGE: "JGE", JB: "JB", JBE: "JBE", JA: "JA", JAE: "JAE",
	CALL: "CALL", RET: "RET",
	NOP: "NOP", HALT: "HALT",
}

// String returns the mnemonic for the opcode.
func (o Op) String() string {
	if int(o) < len(opNames) && opNames[o] != "" {
		return opNames[o]
	}
	return fmt.Sprintf("Op(%d)", uint8(o))
}

// Valid reports whether o is a defined opcode.
//
//cryptojack:hotpath
func (o Op) Valid() bool {
	return o > OpInvalid && o < numOps
}

// Class is a bitmask of microarchitectural classes an opcode belongs to.
// The decoder's programmable tag table (internal/microcode) selects opcodes
// by class or individually.
type Class uint16

const (
	ClassNone   Class = 0
	ClassRotate Class = 1 << iota // ROL/ROR families
	ClassShift                    // SHL/SHR/SAR families
	ClassXor                      // XOR families
	ClassOr                       // OR families
	ClassAnd                      // AND families
	ClassLoad                     // memory loads (incl. POP)
	ClassStore                    // memory stores (incl. PUSH)
	ClassBranch                   // control transfers
	ClassArith                    // integer add/sub/mul/div
	ClassMove                     // register/immediate moves
	ClassMulDiv                   // long-latency integer ops
)

//cryptojack:immutable
var opClasses = [numOps]Class{
	MOV: ClassMove, MOVI: ClassMove, LEA: ClassMove,
	LD: ClassLoad, LD32: ClassLoad, LD16: ClassLoad, LD8: ClassLoad,
	ST: ClassStore, ST32: ClassStore, ST16: ClassStore, ST8: ClassStore,
	PUSH: ClassStore, POP: ClassLoad,
	ADD: ClassArith, ADDI: ClassArith, SUB: ClassArith, SUBI: ClassArith,
	MUL: ClassArith | ClassMulDiv, IMUL: ClassArith | ClassMulDiv,
	DIV: ClassArith | ClassMulDiv, MOD: ClassArith | ClassMulDiv,
	NEG: ClassArith, INC: ClassArith, DEC: ClassArith,
	AND: ClassAnd, ANDI: ClassAnd,
	OR: ClassOr, ORI: ClassOr,
	XOR: ClassXor, XORI: ClassXor,
	NOT: ClassNone,
	SHL: ClassShift, SHLI: ClassShift, SHR: ClassShift, SHRI: ClassShift,
	SAR: ClassShift, SARI: ClassShift,
	ROL: ClassRotate, ROLI: ClassRotate, ROR: ClassRotate, RORI: ClassRotate,
	ROL32I: ClassRotate, ROR32I: ClassRotate,
	CMP: ClassArith, CMPI: ClassArith, TEST: ClassAnd,
	JMP: ClassBranch, JE: ClassBranch, JNE: ClassBranch,
	JL: ClassBranch, JLE: ClassBranch, JG: ClassBranch, JGE: ClassBranch,
	JB: ClassBranch, JBE: ClassBranch, JA: ClassBranch, JAE: ClassBranch,
	CALL: ClassBranch, RET: ClassBranch,
}

// Classes returns the class bitmask for the opcode.
func (o Op) Classes() Class {
	if int(o) < len(opClasses) {
		return opClasses[o]
	}
	return ClassNone
}

// Is reports whether the opcode belongs to class c.
func (o Op) Is(c Class) bool { return o.Classes()&c != 0 }

// IsBranch reports whether the opcode transfers control.
func (o Op) IsBranch() bool { return o.Is(ClassBranch) }

// IsCondBranch reports whether the opcode is a conditional branch.
func (o Op) IsCondBranch() bool {
	switch o {
	case JE, JNE, JL, JLE, JG, JGE, JB, JBE, JA, JAE:
		return true
	default:
		return false
	}
}

// IsMem reports whether the opcode accesses data memory.
func (o Op) IsMem() bool { return o.Is(ClassLoad | ClassStore) }

// AllOps returns every defined opcode, in declaration order. The slice is
// freshly allocated on each call.
func AllOps() []Op {
	ops := make([]Op, 0, NumOps-1)
	for o := OpInvalid + 1; o < numOps; o++ {
		ops = append(ops, o)
	}
	return ops
}
