package isa

// Static per-opcode attribute table.
//
// Classes (op.go) answer "which microarchitectural family is this op in" —
// the decoder's programmable tag table selects by class. Attributes answer
// the finer-grained questions static analysis asks about one instruction in
// isolation: does it read or write the flags register, which side of memory
// does it touch, and is it in the RSX family the default firmware tags.
// internal/gsa's CFG/loop/scoring passes consume this table; the runtime
// twin in exhaustive_test.go proves every opcode carries attributes
// consistent with its class masks, so a new opcode cannot ship without
// both.

// MemClass says which side of data memory an opcode touches.
type MemClass uint8

// Memory classes.
const (
	MemNone MemClass = iota
	MemLoad
	MemStore
)

// OpAttr is the static attribute record of one opcode.
type OpAttr struct {
	// ReadsFlags marks instructions whose behaviour depends on the flags
	// register (the conditional branches).
	ReadsFlags bool
	// WritesFlags marks instructions that define the flags register
	// (arithmetic, logic, shifts/rotates, compares).
	WritesFlags bool
	// Mem is the data-memory side the opcode touches (PUSH/POP/CALL/RET
	// included: they move data through the stack).
	Mem MemClass
	// RSX marks the rotate/shift/xor family — the instructions the paper's
	// default firmware tag set counts toward the mining signature.
	RSX bool
}

//cryptojack:immutable
var opAttrs = [numOps]OpAttr{
	MOV:  {},
	MOVI: {},
	LEA:  {},
	LD:   {Mem: MemLoad},
	LD32: {Mem: MemLoad},
	LD16: {Mem: MemLoad},
	LD8:  {Mem: MemLoad},
	ST:   {Mem: MemStore},
	ST32: {Mem: MemStore},
	ST16: {Mem: MemStore},
	ST8:  {Mem: MemStore},
	PUSH: {Mem: MemStore},
	POP:  {Mem: MemLoad},

	ADD:  {WritesFlags: true},
	ADDI: {WritesFlags: true},
	SUB:  {WritesFlags: true},
	SUBI: {WritesFlags: true},
	MUL:  {WritesFlags: true},
	IMUL: {WritesFlags: true},
	DIV:  {WritesFlags: true},
	MOD:  {WritesFlags: true},
	NEG:  {WritesFlags: true},
	INC:  {WritesFlags: true},
	DEC:  {WritesFlags: true},

	AND:  {WritesFlags: true},
	ANDI: {WritesFlags: true},
	OR:   {WritesFlags: true},
	ORI:  {WritesFlags: true},
	XOR:  {WritesFlags: true, RSX: true},
	XORI: {WritesFlags: true, RSX: true},
	NOT:  {WritesFlags: true},

	SHL:    {WritesFlags: true, RSX: true},
	SHLI:   {WritesFlags: true, RSX: true},
	SHR:    {WritesFlags: true, RSX: true},
	SHRI:   {WritesFlags: true, RSX: true},
	SAR:    {WritesFlags: true, RSX: true},
	SARI:   {WritesFlags: true, RSX: true},
	ROL:    {WritesFlags: true, RSX: true},
	ROLI:   {WritesFlags: true, RSX: true},
	ROR:    {WritesFlags: true, RSX: true},
	RORI:   {WritesFlags: true, RSX: true},
	ROL32I: {WritesFlags: true, RSX: true},
	ROR32I: {WritesFlags: true, RSX: true},

	CMP:  {WritesFlags: true},
	CMPI: {WritesFlags: true},
	TEST: {WritesFlags: true},

	JMP:  {},
	JE:   {ReadsFlags: true},
	JNE:  {ReadsFlags: true},
	JL:   {ReadsFlags: true},
	JLE:  {ReadsFlags: true},
	JG:   {ReadsFlags: true},
	JGE:  {ReadsFlags: true},
	JB:   {ReadsFlags: true},
	JBE:  {ReadsFlags: true},
	JA:   {ReadsFlags: true},
	JAE:  {ReadsFlags: true},
	CALL: {Mem: MemStore},
	RET:  {Mem: MemLoad},

	NOP:  {},
	HALT: {},
}

// Attr returns the opcode's static attribute record (the zero OpAttr for
// out-of-range values).
//
//cryptojack:hotpath
func (o Op) Attr() OpAttr {
	if int(o) < len(opAttrs) {
		return opAttrs[o]
	}
	return OpAttr{}
}

// IsUnsignedCondBranch reports whether the opcode is a conditional branch
// on an unsigned ordered comparison (below/above families). Proof-of-work
// target checks compare hashes as unsigned words, which makes these
// branches a static signal internal/gsa's idiom pass keys on.
func (o Op) IsUnsignedCondBranch() bool {
	switch o {
	case JB, JBE, JA, JAE:
		return true
	default:
		return false
	}
}
