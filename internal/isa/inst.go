package isa

import "fmt"

// Reg names a general purpose register. The machine has 32 64-bit registers;
// by software convention R31 is the stack pointer and R30 the link/frame
// scratch register.
type Reg uint8

// Register aliases.
const (
	R0 Reg = iota
	R1
	R2
	R3
	R4
	R5
	R6
	R7
	R8
	R9
	R10
	R11
	R12
	R13
	R14
	R15
	R16
	R17
	R18
	R19
	R20
	R21
	R22
	R23
	R24
	R25
	R26
	R27
	R28
	R29
	R30
	R31

	// SP is the stack pointer by convention (PUSH/POP/CALL/RET use it).
	SP = R31
	// FP is the conventional frame scratch register.
	FP = R30

	// NumRegs is the architectural register count.
	NumRegs = 32
)

// String returns the assembly name of the register.
func (r Reg) String() string {
	switch r {
	case SP:
		return "sp"
	case FP:
		return "fp"
	default:
		return fmt.Sprintf("r%d", uint8(r))
	}
}

// Inst is a single decoded instruction. The interpretation of the fields
// depends on the opcode:
//
//   - three-operand ALU ops: Rd = Rs1 <op> Rs2 (or Imm for the -I forms)
//   - loads:  Rd = mem[Rs1 + Imm]
//   - stores: mem[Rs1 + Imm] = Rs2
//   - branches: Imm is the target instruction index
//
//cryptojack:immutable
type Inst struct {
	Op  Op
	Rd  Reg
	Rs1 Reg
	Rs2 Reg
	Imm int64
}

// String renders the instruction in assembly-like syntax.
func (i Inst) String() string {
	switch {
	case i.Op == MOVI:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rd, i.Imm)
	case i.Op.Is(ClassLoad) && i.Op != POP:
		return fmt.Sprintf("%s %s, [%s%+d]", i.Op, i.Rd, i.Rs1, i.Imm)
	case i.Op.Is(ClassStore) && i.Op != PUSH:
		return fmt.Sprintf("%s [%s%+d], %s", i.Op, i.Rs1, i.Imm, i.Rs2)
	case i.Op == PUSH:
		return fmt.Sprintf("PUSH %s", i.Rs1)
	case i.Op == POP:
		return fmt.Sprintf("POP %s", i.Rd)
	case i.Op.IsBranch() && i.Op != RET:
		return fmt.Sprintf("%s %d", i.Op, i.Imm)
	case i.Op == RET, i.Op == NOP, i.Op == HALT:
		return i.Op.String()
	case i.Op == CMP || i.Op == TEST:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rs1, i.Rs2)
	case i.Op == CMPI:
		return fmt.Sprintf("%s %s, %d", i.Op, i.Rs1, i.Imm)
	case i.Op == MOV || i.Op == NOT || i.Op == NEG:
		return fmt.Sprintf("%s %s, %s", i.Op, i.Rd, i.Rs1)
	case i.Op == INC || i.Op == DEC:
		return fmt.Sprintf("%s %s", i.Op, i.Rd)
	case hasImmOperand(i.Op):
		return fmt.Sprintf("%s %s, %s, %d", i.Op, i.Rd, i.Rs1, i.Imm)
	default:
		return fmt.Sprintf("%s %s, %s, %s", i.Op, i.Rd, i.Rs1, i.Rs2)
	}
}

func hasImmOperand(o Op) bool {
	switch o {
	case MOVI, ADDI, SUBI, ANDI, ORI, XORI, SHLI, SHRI, SARI, ROLI, RORI, ROL32I, ROR32I, CMPI, LEA:
		return true
	default:
		return false
	}
}

// InstBytes is the modelled encoded size of one instruction. Program
// addresses for the instruction cache are instructionIndex * InstBytes.
const InstBytes = 4

// Program is an executable sequence of instructions plus metadata used by
// loaders and by the static analyses in internal/trace.
//
// Programs are write-once: the assembler/builder fills them in and
// nothing mutates them after a machine starts executing, which is what
// lets cores, the shared block cache, and whole fleets alias one image.
//
//cryptojack:immutable
type Program struct {
	Name    string
	Code    []Inst
	Entry   int            // entry instruction index
	Symbols map[string]int // label -> instruction index
	// DataSize is the number of bytes of zero-initialised scratch memory the
	// program expects above its data base address.
	DataSize int64
	// Data holds initialised data to copy at the data base address.
	Data []byte
	// HotHints lists instruction indices static analysis predicts are hot
	// loop heads (ascending, deduplicated). The trace engine seeds trace
	// formation from them with a lowered heat threshold. Stamped by
	// gsa.Annotate under the same write-once discipline as the code image:
	// set before the program is loaded anywhere, never after.
	HotHints []int
}

// Len returns the number of instructions.
func (p *Program) Len() int { return len(p.Code) }

// SymbolAt returns the instruction index of a label.
func (p *Program) SymbolAt(name string) (int, bool) {
	idx, ok := p.Symbols[name]
	return idx, ok
}

// StaticHistogram counts the static (compiled, not executed) occurrences of
// each opcode in the program, mirroring the paper's Figure 1 objdump
// analysis of Monero's keccakf().
func (p *Program) StaticHistogram() map[Op]int {
	h := make(map[Op]int)
	for _, in := range p.Code {
		h[in.Op]++
	}
	return h
}

// Validate checks structural invariants: defined opcodes, in-range registers
// and branch targets. It returns the first problem found.
func (p *Program) Validate() error {
	for idx, in := range p.Code {
		if !in.Op.Valid() {
			return fmt.Errorf("program %q: instruction %d: invalid opcode", p.Name, idx)
		}
		if in.Rd >= NumRegs || in.Rs1 >= NumRegs || in.Rs2 >= NumRegs {
			return fmt.Errorf("program %q: instruction %d (%s): register out of range", p.Name, idx, in)
		}
		if in.Op.IsBranch() && in.Op != RET {
			if in.Imm < 0 || in.Imm >= int64(len(p.Code)) {
				return fmt.Errorf("program %q: instruction %d (%s): branch target out of range", p.Name, idx, in)
			}
		}
	}
	if p.Entry < 0 || (len(p.Code) > 0 && p.Entry >= len(p.Code)) {
		return fmt.Errorf("program %q: entry %d out of range", p.Name, p.Entry)
	}
	return nil
}
