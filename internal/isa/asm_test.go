package isa

import (
	"strings"
	"testing"
)

const sampleAsm = `
; sum 1..10 into r0, with memory and stack traffic
.name sum10
.data 64
    MOVI r0, 0
    MOVI r1, 1
loop:
    ADD  r0, r0, r1
    ST   [r28+8], r0
    LD   r2, [r28+8]
    PUSH r2
    POP  r3
    ADDI r1, r1, 1
    CMPI r1, 10
    JLE  loop
    HALT
`

func TestAssembleBasicProgram(t *testing.T) {
	p, err := Assemble(sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	if p.Name != "sum10" || p.DataSize != 64 {
		t.Errorf("meta: name=%q data=%d", p.Name, p.DataSize)
	}
	if err := p.Validate(); err != nil {
		t.Fatal(err)
	}
	if _, ok := p.SymbolAt("loop"); !ok {
		t.Error("label lost")
	}
	h := p.StaticHistogram()
	if h[ADD] != 1 || h[ST] != 1 || h[LD] != 1 || h[JLE] != 1 || h[PUSH] != 1 {
		t.Errorf("histogram: %v", h)
	}
}

func TestAssembleDisassembleRoundTrip(t *testing.T) {
	p1, err := Assemble(sampleAsm)
	if err != nil {
		t.Fatal(err)
	}
	text := Disassemble(p1)
	p2, err := Assemble(text)
	if err != nil {
		t.Fatalf("reassemble: %v\n%s", err, text)
	}
	if len(p1.Code) != len(p2.Code) {
		t.Fatalf("length changed: %d -> %d", len(p1.Code), len(p2.Code))
	}
	for i := range p1.Code {
		if p1.Code[i] != p2.Code[i] {
			t.Errorf("inst %d: %s != %s", i, p1.Code[i], p2.Code[i])
		}
	}
	if p1.DataSize != p2.DataSize {
		t.Error("data size changed")
	}
}

func TestAssembleAllOperandShapes(t *testing.T) {
	src := `
x:
    NOP
    MOV  r1, r2
    NOT  r3, r4
    NEG  r5, r6
    INC  r7
    DEC  r8
    LEA  r9, r28, 128
    LD8  r1, [sp-8]
    ST32 [fp+4], r2
    ROL  r1, r2, r3
    RORI r4, r5, 13
    ROR32I r6, r7, 5
    TEST r1, r2
    CALL x
    JMP  x
    RET
    HALT
`
	p, err := Assemble(src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[7].Rs1 != SP || p.Code[7].Imm != -8 {
		t.Errorf("sp-relative load parsed as %s", p.Code[7])
	}
	if p.Code[8].Rs1 != FP || p.Code[8].Imm != 4 {
		t.Errorf("fp-relative store parsed as %s", p.Code[8])
	}
	// Round-trip this too.
	if _, err := Assemble(Disassemble(p)); err != nil {
		t.Fatalf("round trip: %v", err)
	}
}

func TestAssembleErrors(t *testing.T) {
	cases := map[string]string{
		"unknown mnemonic":  "FROB r1, r2, r3",
		"bad register":      "MOV r1, r99",
		"bad operand count": "ADD r1, r2",
		"bad memory":        "LD r1, r2",
		"undefined label":   "JMP nowhere",
		"bad directive":     ".frobnicate 3",
		"bad data":          ".data x",
		"bad imm":           "MOVI r1, lots",
	}
	for name, src := range cases {
		if _, err := Assemble(src); err == nil {
			t.Errorf("%s: accepted %q", name, src)
		}
	}
}

func TestAssembleHexAndNegativeImmediates(t *testing.T) {
	p, err := Assemble("MOVI r1, 0xff\nMOVI r2, -42\nHALT")
	if err != nil {
		t.Fatal(err)
	}
	if p.Code[0].Imm != 255 || p.Code[1].Imm != -42 {
		t.Errorf("imms: %d %d", p.Code[0].Imm, p.Code[1].Imm)
	}
}

func TestDisassembleSyntheticLabels(t *testing.T) {
	b := NewBuilder("loop")
	b.Movi(R1, 3)
	b.Label("top")
	b.OpI(SUBI, R1, R1, 1)
	b.Cmpi(R1, 0)
	b.Jcc(JNE, "top")
	b.Halt()
	text := Disassemble(b.MustBuild())
	if !strings.Contains(text, "top:") {
		t.Errorf("original label lost:\n%s", text)
	}
}
