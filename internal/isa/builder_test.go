package isa

import (
	"strings"
	"testing"
)

func TestBuilderForwardBackwardLabels(t *testing.T) {
	b := NewBuilder("labels")
	b.Movi(R0, 0)
	b.Label("loop")
	b.OpI(ADDI, R0, R0, 1)
	b.Cmpi(R0, 10)
	b.Jcc(JNE, "loop") // backward
	b.Jmp("done")      // forward
	b.Nop()
	b.Label("done")
	b.Halt()

	p, err := b.Build()
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	loop, ok := p.SymbolAt("loop")
	if !ok || loop != 1 {
		t.Errorf("loop symbol = %d, %v", loop, ok)
	}
	if p.Code[3].Imm != int64(loop) {
		t.Errorf("backward branch target = %d, want %d", p.Code[3].Imm, loop)
	}
	done, _ := p.SymbolAt("done")
	if p.Code[4].Imm != int64(done) {
		t.Errorf("forward branch target = %d, want %d", p.Code[4].Imm, done)
	}
}

func TestBuilderUndefinedLabel(t *testing.T) {
	b := NewBuilder("bad")
	b.Jmp("nowhere")
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "nowhere") {
		t.Errorf("Build error = %v, want undefined label", err)
	}
}

func TestBuilderDuplicateLabel(t *testing.T) {
	b := NewBuilder("dup")
	b.Label("a").Nop().Label("a").Halt()
	if _, err := b.Build(); err == nil || !strings.Contains(err.Error(), "redefined") {
		t.Errorf("Build error = %v, want redefined label", err)
	}
}

func TestBuilderJccRejectsNonConditional(t *testing.T) {
	b := NewBuilder("jcc")
	b.Label("x").Jcc(JMP, "x")
	if _, err := b.Build(); err == nil {
		t.Error("Build accepted Jcc(JMP)")
	}
}

func TestProgramValidate(t *testing.T) {
	tests := []struct {
		name string
		p    Program
		ok   bool
	}{
		{"empty", Program{Name: "e"}, true},
		{"good", Program{Name: "g", Code: []Inst{{Op: NOP}, {Op: HALT}}}, true},
		{"invalid op", Program{Name: "i", Code: []Inst{{}}}, false},
		{"branch oob", Program{Name: "b", Code: []Inst{{Op: JMP, Imm: 9}}}, false},
		{"entry oob", Program{Name: "n", Code: []Inst{{Op: NOP}}, Entry: 5}, false},
	}
	for _, tt := range tests {
		err := tt.p.Validate()
		if (err == nil) != tt.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", tt.name, err, tt.ok)
		}
	}
}

func TestStaticHistogram(t *testing.T) {
	p := NewBuilder("hist").
		Op3(XOR, R1, R1, R2).
		Op3(XOR, R2, R2, R3).
		OpI(RORI, R1, R1, 7).
		Mov(R4, R1).
		Halt().
		MustBuild()
	h := p.StaticHistogram()
	if h[XOR] != 2 || h[RORI] != 1 || h[MOV] != 1 || h[HALT] != 1 {
		t.Errorf("histogram = %v", h)
	}
}

func TestMustBuildPanicsOnError(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustBuild did not panic on undefined label")
		}
	}()
	NewBuilder("panic").Jmp("missing").MustBuild()
}

func TestBuilderEmitsExpectedCount(t *testing.T) {
	b := NewBuilder("count")
	for i := 0; i < 100; i++ {
		b.Op3(ADD, R1, R1, R2)
	}
	if b.Len() != 100 {
		t.Errorf("Len() = %d", b.Len())
	}
	p := b.Halt().MustBuild()
	if p.Len() != 101 {
		t.Errorf("program Len() = %d", p.Len())
	}
}
