package evasion_test

import (
	"bytes"
	"math/rand"
	"testing"

	"darkarts/internal/cpu"
	"darkarts/internal/cryptoalg"
	"darkarts/internal/evasion"
	"darkarts/internal/isa"
)

func runProgram(t *testing.T, prog *isa.Program, setup func(*cpu.CPU, uint64)) *cpu.CPU {
	t.Helper()
	cfg := cpu.DefaultConfig()
	cfg.Cores = 1
	cfg.Characterize = true
	machine, err := cpu.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	const base = 0x300_0000
	ctx, err := cpu.NewContext(prog, machine.Memory(), base)
	if err != nil {
		t.Fatal(err)
	}
	if setup != nil {
		setup(machine, base)
	}
	machine.Core(0).LoadContext(ctx)
	for !ctx.Halted {
		if machine.Core(0).Run(100_000_000) == 0 && !ctx.Halted {
			t.Fatal("no progress")
		}
	}
	if ctx.Fault != nil {
		t.Fatalf("fault: %v", ctx.Fault)
	}
	return machine
}

func TestObfuscatedKeccakStillCorrect(t *testing.T) {
	// The rotate-free keccak must produce bit-identical permutations.
	prog, lay := cryptoalg.BuildKeccakFProgram()
	obf, err := evasion.ObfuscateRotates(prog, isa.R8, isa.R9) // dead in keccakf
	if err != nil {
		t.Fatal(err)
	}

	rng := rand.New(rand.NewSource(3))
	var state [25]uint64
	for i := range state {
		state[i] = rng.Uint64()
	}
	want := state
	cryptoalg.KeccakF1600(&want)

	machine := runProgram(t, obf, func(m *cpu.CPU, base uint64) {
		for i, v := range state {
			m.Memory().Write(base+uint64(lay.State)+uint64(8*i), v, 8)
		}
	})
	for i := range state {
		got := machine.Memory().Read(0x300_0000+uint64(lay.State)+uint64(8*i), 8)
		if got != want[i] {
			t.Fatalf("lane %d: %x != %x", i, got, want[i])
		}
	}

	// And the rotate signature must be gone, replaced by shifts/ors.
	bank := machine.Core(0).Counters()
	if rot := bank.ClassCount(isa.ClassRotate); rot != 0 {
		t.Errorf("obfuscated keccak executed %d rotates", rot)
	}
	if bank.ClassCount(isa.ClassShift) == 0 || bank.ClassCount(isa.ClassOr) == 0 {
		t.Error("obfuscation did not produce shifts/ors")
	}
}

func TestObfuscationPreservesOrGrowsRSX(t *testing.T) {
	// The paper's core obfuscation argument: under the aggregated RSX
	// counter, replacing one rotate with two shifts makes the count GROW.
	prog, lay := cryptoalg.BuildKeccakFProgram()
	obf, err := evasion.ObfuscateRotates(prog, isa.R8, isa.R9)
	if err != nil {
		t.Fatal(err)
	}
	rsx := func(p *isa.Program) uint64 {
		m := runProgram(t, p, func(m *cpu.CPU, base uint64) {
			m.Memory().Write(base+uint64(lay.State), 7, 8)
		})
		return m.Core(0).Counters().RSX()
	}
	plain, obfCount := rsx(prog), rsx(obf)
	if obfCount <= plain {
		t.Errorf("RSX after obfuscation %d <= before %d", obfCount, plain)
	}
}

func TestObfuscatedSHA256StillCorrect(t *testing.T) {
	msg := []byte("obfuscated but correct")
	packed := cryptoalg.PackSHA256Blocks(msg)
	nblk := len(packed) / 64
	prog, lay := cryptoalg.BuildSHA256Program(nblk)
	obf, err := evasion.ObfuscateRotates(prog, isa.R22, isa.R23) // dead in sha256
	if err != nil {
		t.Fatal(err)
	}
	machine := runProgram(t, obf, func(m *cpu.CPU, base uint64) {
		m.Memory().WriteBytes(base+uint64(lay.Msg), packed)
		m.Memory().Write(base+uint64(lay.NBlk), uint64(nblk), 8)
	})
	raw := machine.Memory().ReadBytes(0x300_0000+uint64(lay.State), 32)
	got := cryptoalg.UnpackSHA256Digest(raw)
	want := cryptoalg.SHA256(msg)
	if got != want {
		t.Errorf("obfuscated sha256 = %x, want %x", got, want)
	}
	if rot := machine.Core(0).Counters().ClassCount(isa.ClassRotate); rot != 0 {
		t.Errorf("%d rotates survived obfuscation", rot)
	}
}

func TestXorToOrObfuscation(t *testing.T) {
	// Small hand-rolled program: R3 = R1 ^ R2 via obfuscated encoding.
	b := isa.NewBuilder("xorprog")
	b.Movi(isa.R1, 0x00FF00FF00FF00FF)
	b.Movi(isa.R2, 0x0F0F0F0F0F0F0F0F)
	b.Op3(isa.XOR, isa.R3, isa.R1, isa.R2)
	b.OpI(isa.XORI, isa.R4, isa.R3, 0x1234)
	b.St(isa.R28, 0, isa.R3)
	b.St(isa.R28, 8, isa.R4)
	b.Halt()
	prog := b.MustBuild()
	prog.DataSize = 64

	obf, err := evasion.ObfuscateXorToOr(prog, isa.R10, isa.R11)
	if err != nil {
		t.Fatal(err)
	}
	machine := runProgram(t, obf, nil)
	r3 := machine.Memory().Read(0x300_0000, 8)
	r4 := machine.Memory().Read(0x300_0000+8, 8)
	if r3 != 0x00FF00FF00FF00FF^0x0F0F0F0F0F0F0F0F {
		t.Errorf("r3 = %#x", r3)
	}
	if r4 != r3^0x1234 {
		t.Errorf("r4 = %#x", r4)
	}
	if x := machine.Core(0).Counters().ClassCount(isa.ClassXor); x != 0 {
		t.Errorf("%d xors survived obfuscation", x)
	}
	if machine.Core(0).Counters().ClassCount(isa.ClassOr) == 0 {
		t.Error("no ors emitted")
	}
}

func TestRewriteRejectsBranchInReplacement(t *testing.T) {
	b := isa.NewBuilder("p")
	b.Op3(isa.XOR, isa.R1, isa.R1, isa.R1)
	b.Halt()
	_, err := evasion.RewriteProgram(b.MustBuild(), func(in isa.Inst) []isa.Inst {
		if in.Op == isa.XOR {
			return []isa.Inst{{Op: isa.JMP}}
		}
		return nil
	})
	if err == nil {
		t.Error("branch-in-replacement accepted")
	}
}

func TestObfuscateRejectsAliasedScratch(t *testing.T) {
	prog, _ := cryptoalg.BuildKeccakFProgram()
	if _, err := evasion.ObfuscateRotates(prog, isa.R8, isa.R8); err == nil {
		t.Error("aliased scratch accepted")
	}
	if _, err := evasion.ObfuscateXorToOr(prog, isa.R8, isa.R8); err == nil {
		t.Error("aliased scratch accepted")
	}
}

func TestRateLevelTransforms(t *testing.T) {
	r := evasion.ClassRates{Rotate: 10, Shift: 5, Xor: 20, Or: 2}
	rf := evasion.RotateFreeRates(r)
	if rf.Rotate != 0 || rf.Shift != 25 || rf.Or != 12 || rf.Xor != 20 {
		t.Errorf("RotateFreeRates = %+v", rf)
	}
	// RSX does not shrink under rotate obfuscation (it grows).
	if rf.RSX() <= r.RSX() {
		t.Errorf("RSX shrank: %f -> %f", r.RSX(), rf.RSX())
	}
	xf := evasion.XorFreeRates(r)
	if xf.Xor != 0 || xf.Or != 22 {
		t.Errorf("XorFreeRates = %+v", xf)
	}
	// XOR->OR evades RSX but not RSXO.
	if xf.RSX() >= r.RSX() {
		t.Error("xor obfuscation did not reduce RSX")
	}
	if xf.RSXO() < r.RSXO() {
		t.Error("RSXO lost instructions under xor obfuscation")
	}
}

var _ = bytes.Equal // keep bytes import if unused later
