// Package evasion implements the attacker-side evasion techniques the
// paper's defense is designed to withstand (Sections III, VI-B, VI-E):
//
//   - code obfuscation: rewriting rotate instructions into the
//     shift/or sequences of equations 6a/6b, and re-encoding XOR with OR
//     logic (A xor B = (A and not B) or (not A and B));
//   - throttled execution (duty-cycle reduction);
//   - multi-threaded work splitting (via miner.SpawnMiner / kernel clones).
//
// The obfuscator is a real program rewriter: it expands instructions in
// place and remaps every branch target, so obfuscated kernels still compute
// bit-identical results — which the tests enforce.
package evasion
