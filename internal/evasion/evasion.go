package evasion

import (
	"fmt"

	"darkarts/internal/isa"
)

// Rewriter maps one instruction to its replacement sequence; returning nil
// keeps the instruction unchanged. Replacement sequences must not contain
// branch instructions (targets could not be remapped).
type Rewriter func(in isa.Inst) []isa.Inst

// RewriteProgram applies fn to every instruction and fixes up all branch
// targets and symbols to account for expansion.
func RewriteProgram(p *isa.Program, fn Rewriter) (*isa.Program, error) {
	newIdx := make([]int, len(p.Code)+1)
	var out []isa.Inst
	for i, in := range p.Code {
		newIdx[i] = len(out)
		rep := fn(in)
		if rep == nil {
			out = append(out, in)
			continue
		}
		for _, r := range rep {
			if r.Op.IsBranch() {
				return nil, fmt.Errorf("rewrite %s at %d: replacement contains branch %s", p.Name, i, r.Op)
			}
		}
		out = append(out, rep...)
	}
	newIdx[len(p.Code)] = len(out)

	// Remap branch targets: only instructions copied verbatim can be
	// branches, and their Imm still holds an original index.
	final := out
	for i := range final {
		if final[i].Op.IsBranch() && final[i].Op != isa.RET {
			old := final[i].Imm
			if old < 0 || old > int64(len(p.Code)) {
				return nil, fmt.Errorf("rewrite %s: branch target %d out of range", p.Name, old)
			}
			final[i].Imm = int64(newIdx[old])
		}
	}

	symbols := make(map[string]int, len(p.Symbols))
	for name, idx := range p.Symbols {
		symbols[name] = newIdx[idx]
	}
	q := &isa.Program{
		Name:     p.Name + "+obf",
		Code:     final,
		Entry:    newIdx[p.Entry],
		Symbols:  symbols,
		DataSize: p.DataSize,
		Data:     append([]byte(nil), p.Data...),
	}
	if err := q.Validate(); err != nil {
		return nil, err
	}
	return q, nil
}

// ObfuscateRotates rewrites every rotate instruction into the equivalent
// shift/or sequence (equations 6a and 6b):
//
//	Rl^n = Sl^n  OR  Sr^(64-n)
//	Rr^n = Sr^n  OR  Sl^(64-n)
//
// s1 and s2 are caller-guaranteed dead scratch registers, distinct from
// each other and from every operand of the rewritten instructions.
func ObfuscateRotates(p *isa.Program, s1, s2 isa.Reg) (*isa.Program, error) {
	if s1 == s2 {
		return nil, fmt.Errorf("obfuscate %s: scratch registers alias", p.Name)
	}
	return RewriteProgram(p, func(in isa.Inst) []isa.Inst {
		switch in.Op {
		case isa.ROLI, isa.RORI:
			n := in.Imm & 63
			a, b := isa.SHLI, isa.SHRI
			if in.Op == isa.RORI {
				a, b = isa.SHRI, isa.SHLI
			}
			return []isa.Inst{
				{Op: a, Rd: s1, Rs1: in.Rs1, Imm: n},
				{Op: b, Rd: s2, Rs1: in.Rs1, Imm: (64 - n) & 63},
				{Op: isa.OR, Rd: in.Rd, Rs1: s1, Rs2: s2},
			}
		case isa.ROL, isa.ROR:
			a, b := isa.SHL, isa.SHR
			if in.Op == isa.ROR {
				a, b = isa.SHR, isa.SHL
			}
			return []isa.Inst{
				{Op: a, Rd: s1, Rs1: in.Rs1, Rs2: in.Rs2},
				{Op: isa.MOVI, Rd: s2, Imm: 64},
				{Op: isa.SUB, Rd: s2, Rs1: s2, Rs2: in.Rs2},
				{Op: b, Rd: s2, Rs1: in.Rs1, Rs2: s2},
				{Op: isa.OR, Rd: in.Rd, Rs1: s1, Rs2: s2},
			}
		case isa.ROL32I, isa.ROR32I:
			n := in.Imm & 31
			a, b := isa.SHLI, isa.SHRI
			if in.Op == isa.ROR32I {
				a, b = isa.SHRI, isa.SHLI
			}
			return []isa.Inst{
				{Op: isa.ANDI, Rd: s1, Rs1: in.Rs1, Imm: 0xFFFFFFFF},
				{Op: a, Rd: s2, Rs1: s1, Imm: n},
				{Op: b, Rd: s1, Rs1: s1, Imm: 32 - n},
				{Op: isa.OR, Rd: s1, Rs1: s1, Rs2: s2},
				{Op: isa.ANDI, Rd: in.Rd, Rs1: s1, Imm: 0xFFFFFFFF},
			}
		default:
			// Every other opcode passes through unrewritten.
			return nil
		}
	})
}

// ObfuscateXorToOr re-encodes XOR as (A AND NOT B) OR (NOT A AND B),
// the Section VI-B attack the RSXO tag set answers.
func ObfuscateXorToOr(p *isa.Program, s1, s2 isa.Reg) (*isa.Program, error) {
	if s1 == s2 {
		return nil, fmt.Errorf("obfuscate %s: scratch registers alias", p.Name)
	}
	return RewriteProgram(p, func(in isa.Inst) []isa.Inst {
		switch in.Op {
		case isa.XOR:
			return []isa.Inst{
				{Op: isa.NOT, Rd: s1, Rs1: in.Rs2},
				{Op: isa.AND, Rd: s1, Rs1: s1, Rs2: in.Rs1},
				{Op: isa.NOT, Rd: s2, Rs1: in.Rs1},
				{Op: isa.AND, Rd: s2, Rs1: s2, Rs2: in.Rs2},
				{Op: isa.OR, Rd: in.Rd, Rs1: s1, Rs2: s2},
			}
		case isa.XORI:
			return []isa.Inst{
				{Op: isa.NOT, Rd: s1, Rs1: in.Rs1},
				{Op: isa.ANDI, Rd: s1, Rs1: s1, Imm: in.Imm},
				{Op: isa.ANDI, Rd: s2, Rs1: in.Rs1, Imm: ^in.Imm},
				{Op: isa.OR, Rd: in.Rd, Rs1: s1, Rs2: s2},
			}
		default:
			// Every other opcode passes through unrewritten.
			return nil
		}
	})
}

// RotateFreeRates transforms a per-class instruction-rate tuple the way the
// rotate obfuscation transforms real code: every rotate becomes two shifts
// and an or. Used by rate-model experiments (the ablation showing that a
// rotate-only counter is evadable while the aggregate RSX counter is not).
type ClassRates struct {
	Rotate, Shift, Xor, Or float64
}

// RSX returns rotate+shift+xor.
func (r ClassRates) RSX() float64 { return r.Rotate + r.Shift + r.Xor }

// RSXO additionally includes or.
func (r ClassRates) RSXO() float64 { return r.RSX() + r.Or }

// RotateFreeRates applies equations 6a/6b at the rate level.
func RotateFreeRates(r ClassRates) ClassRates {
	return ClassRates{
		Rotate: 0,
		Shift:  r.Shift + 2*r.Rotate,
		Xor:    r.Xor,
		Or:     r.Or + r.Rotate,
	}
}

// XorFreeRates applies the XOR→OR re-encoding at the rate level: each xor
// becomes 2 nots, 2 ands and an or (only or is RSXO-visible).
func XorFreeRates(r ClassRates) ClassRates {
	return ClassRates{
		Rotate: r.Rotate,
		Shift:  r.Shift,
		Xor:    0,
		Or:     r.Or + r.Xor,
	}
}
