package detect

// ThresholdDetector classifies a workload from its RSX rate.
type ThresholdDetector struct {
	// PerMinute is the alert threshold in RSX instructions per minute.
	PerMinute float64
}

// DefaultThreshold returns the paper's 2.5B/min detector.
func DefaultThreshold() ThresholdDetector {
	return ThresholdDetector{PerMinute: 2.5e9}
}

// Malicious reports whether an observed rate (RSX instructions per minute)
// exceeds the threshold.
func (t ThresholdDetector) Malicious(rsxPerMin float64) bool {
	return rsxPerMin > t.PerMinute
}

// Sweep evaluates candidate thresholds against labelled rates and returns,
// for each candidate, the detection rate over positives and the false
// positive rate over negatives. Used to reproduce the paper's threshold
// selection over 153 benign workloads.
type SweepPoint struct {
	Threshold     float64
	DetectionRate float64
	FPR           float64
}

// Sweep runs the candidate thresholds over the labelled rates.
func Sweep(candidates []float64, benignRates, maliciousRates []float64) []SweepPoint {
	out := make([]SweepPoint, 0, len(candidates))
	for _, th := range candidates {
		d := ThresholdDetector{PerMinute: th}
		var tp, fp int
		for _, r := range maliciousRates {
			if d.Malicious(r) {
				tp++
			}
		}
		for _, r := range benignRates {
			if d.Malicious(r) {
				fp++
			}
		}
		p := SweepPoint{Threshold: th}
		if len(maliciousRates) > 0 {
			p.DetectionRate = float64(tp) / float64(len(maliciousRates))
		}
		if len(benignRates) > 0 {
			p.FPR = float64(fp) / float64(len(benignRates))
		}
		out = append(out, p)
	}
	return out
}
