package detect

import (
	"fmt"
	"math"
	"sort"
)

// PCA reduces feature dimensionality by projection onto the top principal
// components, reproducing the paper's 527 -> 11 reduction. Implemented
// from scratch: when samples < features (272 < 527 in the paper), the
// eigenproblem is solved in the dual (Gram) space, which is exact and far
// cheaper; eigenvectors come from a cyclic Jacobi rotation sweep.
type PCA struct {
	mean       []float64
	components [][]float64 // k x d, unit length
	variances  []float64   // eigenvalues for the kept components
}

// FitPCA learns a k-component projection from X (n samples x d features).
func FitPCA(x [][]float64, k int) (*PCA, error) {
	n := len(x)
	if n < 2 {
		return nil, fmt.Errorf("pca: need at least 2 samples, got %d", n)
	}
	d := len(x[0])
	if k < 1 || k > d || k > n {
		return nil, fmt.Errorf("pca: k=%d out of range (n=%d, d=%d)", k, n, d)
	}
	for i := range x {
		if len(x[i]) != d {
			return nil, fmt.Errorf("pca: ragged input at row %d", i)
		}
	}

	mean := make([]float64, d)
	for _, row := range x {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(n)
	}
	// Centered data.
	c := make([][]float64, n)
	for i := range x {
		c[i] = make([]float64, d)
		for j := range x[i] {
			c[i][j] = x[i][j] - mean[j]
		}
	}

	// Dual PCA: G = C Cᵀ (n x n), eigenvectors u -> components v = Cᵀu/|Cᵀu|.
	g := make([][]float64, n)
	for i := range g {
		g[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			var s float64
			for t := 0; t < d; t++ {
				s += c[i][t] * c[j][t]
			}
			g[i][j] = s
			g[j][i] = s
		}
	}

	vals, vecs := jacobiEigen(g)
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return vals[order[a]] > vals[order[b]] })

	p := &PCA{mean: mean}
	for rank := 0; rank < k; rank++ {
		idx := order[rank]
		lambda := vals[idx]
		if lambda < 1e-12 {
			break // remaining variance is numerically zero
		}
		comp := make([]float64, d)
		for i := 0; i < n; i++ {
			u := vecs[i][idx]
			for t := 0; t < d; t++ {
				comp[t] += u * c[i][t]
			}
		}
		var norm float64
		for _, v := range comp {
			norm += v * v
		}
		norm = math.Sqrt(norm)
		if norm == 0 {
			break
		}
		for t := range comp {
			comp[t] /= norm
		}
		p.components = append(p.components, comp)
		p.variances = append(p.variances, lambda/float64(n-1))
	}
	if len(p.components) == 0 {
		return nil, fmt.Errorf("pca: input has no variance")
	}
	return p, nil
}

// K returns the number of retained components.
func (p *PCA) K() int { return len(p.components) }

// ExplainedVariances returns the per-component variances, descending.
func (p *PCA) ExplainedVariances() []float64 {
	out := make([]float64, len(p.variances))
	copy(out, p.variances)
	return out
}

// Transform projects one sample.
func (p *PCA) Transform(row []float64) []float64 {
	out := make([]float64, len(p.components))
	for k, comp := range p.components {
		var s float64
		for j, v := range row {
			s += (v - p.mean[j]) * comp[j]
		}
		out[k] = s
	}
	return out
}

// TransformAll projects every sample.
func (p *PCA) TransformAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = p.Transform(row)
	}
	return out
}

// jacobiEigen diagonalizes a symmetric matrix with cyclic Jacobi rotations,
// returning eigenvalues and the matrix of eigenvectors (columns).
func jacobiEigen(a [][]float64) ([]float64, [][]float64) {
	n := len(a)
	// Work on a copy.
	m := make([][]float64, n)
	for i := range a {
		m[i] = append([]float64(nil), a[i]...)
	}
	v := make([][]float64, n)
	for i := range v {
		v[i] = make([]float64, n)
		v[i][i] = 1
	}

	for sweep := 0; sweep < 64; sweep++ {
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += m[i][j] * m[i][j]
			}
		}
		if off < 1e-18 {
			break
		}
		for i := 0; i < n-1; i++ {
			for j := i + 1; j < n; j++ {
				if math.Abs(m[i][j]) < 1e-15 {
					continue
				}
				theta := (m[j][j] - m[i][i]) / (2 * m[i][j])
				t := math.Copysign(1, theta) / (math.Abs(theta) + math.Sqrt(theta*theta+1))
				cos := 1 / math.Sqrt(t*t+1)
				sin := t * cos
				for k := 0; k < n; k++ {
					mik, mjk := m[i][k], m[j][k]
					m[i][k] = cos*mik - sin*mjk
					m[j][k] = sin*mik + cos*mjk
				}
				for k := 0; k < n; k++ {
					mki, mkj := m[k][i], m[k][j]
					m[k][i] = cos*mki - sin*mkj
					m[k][j] = sin*mki + cos*mkj
				}
				for k := 0; k < n; k++ {
					vki, vkj := v[k][i], v[k][j]
					v[k][i] = cos*vki - sin*vkj
					v[k][j] = sin*vki + cos*vkj
				}
			}
		}
	}
	vals := make([]float64, n)
	for i := 0; i < n; i++ {
		vals[i] = m[i][i]
	}
	return vals, v
}
