package detect

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
)

// Model is a binary classifier over feature vectors; labels are +1
// (malicious) and -1 (benign).
type Model interface {
	Name() string
	Fit(x [][]float64, y []int) error
	Predict(row []float64) int
}

// checkDataset validates a labelled dataset.
func checkDataset(x [][]float64, y []int) error {
	if len(x) == 0 || len(x) != len(y) {
		return fmt.Errorf("detect: bad dataset shape (%d samples, %d labels)", len(x), len(y))
	}
	d := len(x[0])
	for i := range x {
		if len(x[i]) != d {
			return fmt.Errorf("detect: ragged row %d", i)
		}
		if y[i] != 1 && y[i] != -1 {
			return fmt.Errorf("detect: label %d at row %d (want +/-1)", y[i], i)
		}
	}
	return nil
}

// SVM is a linear soft-margin SVM trained with the Pegasos stochastic
// subgradient method.
type SVM struct {
	Lambda float64 // regularization (default 1e-4)
	Epochs int     // passes over the data (default 200)
	Seed   int64

	w []float64
	b float64
}

// Name implements Model.
func (s *SVM) Name() string { return "SVM" }

// Fit implements Model.
func (s *SVM) Fit(x [][]float64, y []int) error {
	if err := checkDataset(x, y); err != nil {
		return err
	}
	lambda := s.Lambda
	if lambda <= 0 {
		lambda = 1e-4
	}
	epochs := s.Epochs
	if epochs <= 0 {
		epochs = 200
	}
	d := len(x[0])
	s.w = make([]float64, d)
	s.b = 0
	rng := rand.New(rand.NewSource(s.Seed + 1))
	t := 1
	for e := 0; e < epochs; e++ {
		perm := rng.Perm(len(x))
		for _, i := range perm {
			eta := 1 / (lambda * float64(t))
			t++
			margin := float64(y[i]) * (dot(s.w, x[i]) + s.b)
			for j := range s.w {
				s.w[j] *= 1 - eta*lambda
			}
			if margin < 1 {
				for j := range s.w {
					s.w[j] += eta * float64(y[i]) * x[i][j]
				}
				s.b += eta * float64(y[i])
			}
		}
	}
	return nil
}

// Predict implements Model.
func (s *SVM) Predict(row []float64) int {
	if dot(s.w, row)+s.b >= 0 {
		return 1
	}
	return -1
}

// Decision returns the signed margin (useful for threshold tuning).
func (s *SVM) Decision(row []float64) float64 { return dot(s.w, row) + s.b }

// LogisticRegression is a batch gradient-descent logistic classifier.
type LogisticRegression struct {
	LR     float64 // learning rate (default 0.1)
	Epochs int     // default 300
	L2     float64 // ridge penalty (default 1e-4)

	w []float64
	b float64
}

// Name implements Model.
func (l *LogisticRegression) Name() string { return "LogisticRegression" }

// Fit implements Model.
func (l *LogisticRegression) Fit(x [][]float64, y []int) error {
	if err := checkDataset(x, y); err != nil {
		return err
	}
	lr := l.LR
	if lr <= 0 {
		lr = 0.1
	}
	epochs := l.Epochs
	if epochs <= 0 {
		epochs = 300
	}
	l2 := l.L2
	if l2 < 0 {
		l2 = 0
	} else if l2 == 0 {
		l2 = 1e-4
	}
	d := len(x[0])
	l.w = make([]float64, d)
	l.b = 0
	n := float64(len(x))
	gw := make([]float64, d)
	for e := 0; e < epochs; e++ {
		for j := range gw {
			gw[j] = l2 * l.w[j]
		}
		gb := 0.0
		for i := range x {
			t := 0.0
			if y[i] == 1 {
				t = 1
			}
			p := sigmoid(dot(l.w, x[i]) + l.b)
			err := p - t
			for j := range x[i] {
				gw[j] += err * x[i][j] / n
			}
			gb += err / n
		}
		for j := range l.w {
			l.w[j] -= lr * gw[j]
		}
		l.b -= lr * gb
	}
	return nil
}

// Predict implements Model.
func (l *LogisticRegression) Predict(row []float64) int {
	if sigmoid(dot(l.w, row)+l.b) >= 0.5 {
		return 1
	}
	return -1
}

// Probability returns P(malicious | row).
func (l *LogisticRegression) Probability(row []float64) float64 {
	return sigmoid(dot(l.w, row) + l.b)
}

// DecisionTree is a depth-limited CART classifier with Gini splits.
type DecisionTree struct {
	MaxDepth    int // default 5
	MinLeafSize int // default 3

	root *treeNode
}

type treeNode struct {
	feature int
	thresh  float64
	label   int // leaf label when left/right nil
	left    *treeNode
	right   *treeNode
}

// Name implements Model.
func (d *DecisionTree) Name() string { return "DecisionTree" }

// Fit implements Model.
func (d *DecisionTree) Fit(x [][]float64, y []int) error {
	if err := checkDataset(x, y); err != nil {
		return err
	}
	if d.MaxDepth <= 0 {
		d.MaxDepth = 5
	}
	if d.MinLeafSize <= 0 {
		d.MinLeafSize = 3
	}
	idx := make([]int, len(x))
	for i := range idx {
		idx[i] = i
	}
	d.root = d.build(x, y, idx, 0)
	return nil
}

func majority(y []int, idx []int) int {
	s := 0
	for _, i := range idx {
		s += y[i]
	}
	if s >= 0 {
		return 1
	}
	return -1
}

func gini(y []int, idx []int) float64 {
	if len(idx) == 0 {
		return 0
	}
	pos := 0
	for _, i := range idx {
		if y[i] == 1 {
			pos++
		}
	}
	p := float64(pos) / float64(len(idx))
	return 2 * p * (1 - p)
}

func (d *DecisionTree) build(x [][]float64, y []int, idx []int, depth int) *treeNode {
	if depth >= d.MaxDepth || len(idx) <= d.MinLeafSize || gini(y, idx) == 0 {
		return &treeNode{feature: -1, label: majority(y, idx)}
	}
	nFeat := len(x[0])
	bestGain, bestF, bestT := 0.0, -1, 0.0
	parent := gini(y, idx)
	vals := make([]float64, 0, len(idx))
	for f := 0; f < nFeat; f++ {
		vals = vals[:0]
		for _, i := range idx {
			vals = append(vals, x[i][f])
		}
		sort.Float64s(vals)
		for k := 1; k < len(vals); k++ {
			if vals[k] == vals[k-1] {
				continue
			}
			t := (vals[k] + vals[k-1]) / 2
			var left, right []int
			for _, i := range idx {
				if x[i][f] <= t {
					left = append(left, i)
				} else {
					right = append(right, i)
				}
			}
			nl, nr := float64(len(left)), float64(len(right))
			gain := parent - (nl*gini(y, left)+nr*gini(y, right))/(nl+nr)
			if gain > bestGain {
				bestGain, bestF, bestT = gain, f, t
			}
		}
	}
	if bestF < 0 {
		return &treeNode{feature: -1, label: majority(y, idx)}
	}
	var left, right []int
	for _, i := range idx {
		if x[i][bestF] <= bestT {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	return &treeNode{
		feature: bestF,
		thresh:  bestT,
		left:    d.build(x, y, left, depth+1),
		right:   d.build(x, y, right, depth+1),
	}
}

// Predict implements Model.
func (d *DecisionTree) Predict(row []float64) int {
	n := d.root
	for n != nil && n.feature >= 0 {
		if row[n.feature] <= n.thresh {
			n = n.left
		} else {
			n = n.right
		}
	}
	if n == nil {
		return -1
	}
	return n.label
}

// KNN is a k-nearest-neighbour classifier (Euclidean).
type KNN struct {
	K int // default 5

	x [][]float64
	y []int
}

// Name implements Model.
func (k *KNN) Name() string { return "kNN" }

// Fit implements Model.
func (k *KNN) Fit(x [][]float64, y []int) error {
	if err := checkDataset(x, y); err != nil {
		return err
	}
	if k.K <= 0 {
		k.K = 5
	}
	k.x = x
	k.y = y
	return nil
}

// Predict implements Model.
func (k *KNN) Predict(row []float64) int {
	type nd struct {
		d float64
		y int
	}
	nds := make([]nd, len(k.x))
	for i := range k.x {
		var s float64
		for j := range row {
			diff := row[j] - k.x[i][j]
			s += diff * diff
		}
		nds[i] = nd{d: s, y: k.y[i]}
	}
	sort.Slice(nds, func(a, b int) bool { return nds[a].d < nds[b].d })
	n := k.K
	if n > len(nds) {
		n = len(nds)
	}
	vote := 0
	for i := 0; i < n; i++ {
		vote += nds[i].y
	}
	if vote >= 0 {
		return 1
	}
	return -1
}

func dot(a, b []float64) float64 {
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

func sigmoid(z float64) float64 {
	return 1 / (1 + math.Exp(-z))
}
