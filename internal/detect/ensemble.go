package detect

import (
	"fmt"
	"math"
	"math/rand"
)

// RandomForest is a bagged ensemble of CART trees with feature subsampling.
type RandomForest struct {
	Trees    int // default 25
	MaxDepth int // per-tree depth (default 6)
	Seed     int64

	forest []*DecisionTree
	masks  [][]int // feature subset per tree
}

// Name implements Model.
func (r *RandomForest) Name() string { return "RandomForest" }

// Fit implements Model.
func (r *RandomForest) Fit(x [][]float64, y []int) error {
	if err := checkDataset(x, y); err != nil {
		return err
	}
	if r.Trees <= 0 {
		r.Trees = 25
	}
	if r.MaxDepth <= 0 {
		r.MaxDepth = 6
	}
	rng := rand.New(rand.NewSource(r.Seed + 99))
	d := len(x[0])
	nFeat := int(math.Sqrt(float64(d)))
	if nFeat < 1 {
		nFeat = 1
	}
	r.forest = r.forest[:0]
	r.masks = r.masks[:0]
	for t := 0; t < r.Trees; t++ {
		// Bootstrap sample.
		bx := make([][]float64, len(x))
		by := make([]int, len(y))
		for i := range bx {
			j := rng.Intn(len(x))
			bx[i] = x[j]
			by[i] = y[j]
		}
		// Feature subset: project the bootstrap sample.
		mask := rng.Perm(d)[:nFeat]
		px := make([][]float64, len(bx))
		for i, row := range bx {
			pr := make([]float64, nFeat)
			for k, f := range mask {
				pr[k] = row[f]
			}
			px[i] = pr
		}
		tree := &DecisionTree{MaxDepth: r.MaxDepth}
		if err := tree.Fit(px, by); err != nil {
			return fmt.Errorf("random forest tree %d: %w", t, err)
		}
		r.forest = append(r.forest, tree)
		r.masks = append(r.masks, mask)
	}
	return nil
}

// Predict implements Model (majority vote).
func (r *RandomForest) Predict(row []float64) int {
	vote := 0
	for t, tree := range r.forest {
		pr := make([]float64, len(r.masks[t]))
		for k, f := range r.masks[t] {
			pr[k] = row[f]
		}
		vote += tree.Predict(pr)
	}
	if vote >= 0 {
		return 1
	}
	return -1
}

// GaussianNB is a Gaussian naive Bayes classifier.
type GaussianNB struct {
	mean, varc [2][]float64 // [class][feature]; class 0 = -1, 1 = +1
	prior      [2]float64
}

// Name implements Model.
func (g *GaussianNB) Name() string { return "NaiveBayes" }

// Fit implements Model.
func (g *GaussianNB) Fit(x [][]float64, y []int) error {
	if err := checkDataset(x, y); err != nil {
		return err
	}
	d := len(x[0])
	var count [2]float64
	for c := 0; c < 2; c++ {
		g.mean[c] = make([]float64, d)
		g.varc[c] = make([]float64, d)
	}
	cls := func(label int) int {
		if label == 1 {
			return 1
		}
		return 0
	}
	for i, row := range x {
		c := cls(y[i])
		count[c]++
		for j, v := range row {
			g.mean[c][j] += v
		}
	}
	for c := 0; c < 2; c++ {
		if count[c] == 0 {
			return fmt.Errorf("naive bayes: class %d has no samples", c)
		}
		for j := range g.mean[c] {
			g.mean[c][j] /= count[c]
		}
	}
	for i, row := range x {
		c := cls(y[i])
		for j, v := range row {
			dv := v - g.mean[c][j]
			g.varc[c][j] += dv * dv
		}
	}
	for c := 0; c < 2; c++ {
		for j := range g.varc[c] {
			g.varc[c][j] = g.varc[c][j]/count[c] + 1e-9 // smoothed
		}
		g.prior[c] = count[c] / float64(len(x))
	}
	return nil
}

// Predict implements Model.
func (g *GaussianNB) Predict(row []float64) int {
	var logp [2]float64
	for c := 0; c < 2; c++ {
		logp[c] = math.Log(g.prior[c])
		for j, v := range row {
			dv := v - g.mean[c][j]
			logp[c] += -0.5*math.Log(2*math.Pi*g.varc[c][j]) - dv*dv/(2*g.varc[c][j])
		}
	}
	if logp[1] >= logp[0] {
		return 1
	}
	return -1
}

// CrossValidate runs k-fold cross-validation of a model factory over the
// dataset and returns the per-fold confusion matrices.
func CrossValidate(factory func() Model, x [][]float64, y []int, folds int, seed int64) ([]Confusion, error) {
	if err := checkDataset(x, y); err != nil {
		return nil, err
	}
	if folds < 2 || folds > len(x) {
		return nil, fmt.Errorf("detect: %d folds for %d samples", folds, len(x))
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(x))

	out := make([]Confusion, 0, folds)
	for f := 0; f < folds; f++ {
		var xtr, xte [][]float64
		var ytr, yte []int
		for i, idx := range perm {
			if i%folds == f {
				xte = append(xte, x[idx])
				yte = append(yte, y[idx])
			} else {
				xtr = append(xtr, x[idx])
				ytr = append(ytr, y[idx])
			}
		}
		m := factory()
		if err := m.Fit(xtr, ytr); err != nil {
			return nil, fmt.Errorf("fold %d: %w", f, err)
		}
		out = append(out, Evaluate(m, xte, yte))
	}
	return out, nil
}

// MeanAccuracy averages fold accuracies.
func MeanAccuracy(folds []Confusion) float64 {
	if len(folds) == 0 {
		return 0
	}
	var sum float64
	for _, c := range folds {
		sum += c.Accuracy()
	}
	return sum / float64(len(folds))
}
