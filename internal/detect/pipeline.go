package detect

import (
	"fmt"
	"math/rand"
	"time"

	"darkarts/internal/obs"
)

// Pipeline is the paper's full ML detector: standardize, project with PCA
// (527 -> 11 in the paper), then classify.
type Pipeline struct {
	Components int // PCA dimensionality (default 11)
	Model      Model
	// Obs, when non-nil before Fit, receives the ml_* metrics (fit
	// count/duration, per-prediction latency); see OBSERVABILITY.md. A
	// nil Obs keeps Predict on the uninstrumented fast path.
	Obs *obs.Registry

	scaler *Scaler
	pca    *PCA
	// post standardizes the PCA projections (whitening): principal
	// components carry wildly different variances, which throws off
	// margin-based models.
	post *Scaler
	m    *mlMetrics
}

// mlMetrics are the pipeline's pre-resolved observability handles.
type mlMetrics struct {
	fits      *obs.Counter
	fitNs     *obs.Counter
	predicts  *obs.Counter
	predictNs *obs.Histogram
}

// mlPredictBuckets bracket per-prediction host latency (dot products over
// ~11 components: typically well under a microsecond).
var mlPredictBuckets = []uint64{100, 1_000, 10_000, 100_000, 1_000_000}

// Fit trains the whole pipeline on labelled feature vectors.
func (p *Pipeline) Fit(x [][]float64, y []int) error {
	start := time.Now()
	if p.Model == nil {
		return fmt.Errorf("pipeline: nil model")
	}
	if p.Components <= 0 {
		p.Components = 11
	}
	if err := checkDataset(x, y); err != nil {
		return err
	}
	p.scaler = FitScaler(x)
	scaled := p.scaler.TransformAll(x)
	k := p.Components
	if k > len(x[0]) {
		k = len(x[0])
	}
	if k > len(x) {
		k = len(x)
	}
	pca, err := FitPCA(scaled, k)
	if err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	p.pca = pca
	proj := pca.TransformAll(scaled)
	p.post = FitScaler(proj)
	if err := p.Model.Fit(p.post.TransformAll(proj), y); err != nil {
		return err
	}
	if p.Obs != nil {
		p.m = &mlMetrics{
			fits: p.Obs.Counter(obs.Desc{Name: "ml_fit_total", Layer: obs.LayerDetect,
				Unit: "fits", Help: "ML pipeline trainings completed"}),
			fitNs: p.Obs.Counter(obs.Desc{Name: "ml_fit_ns_total", Layer: obs.LayerDetect,
				Unit: "ns", Help: "host time spent fitting the ML pipeline"}),
			predicts: p.Obs.Counter(obs.Desc{Name: "ml_predict_total", Layer: obs.LayerDetect,
				Unit: "predictions", Help: "ML pipeline predictions served"}),
			predictNs: p.Obs.Histogram(obs.Desc{Name: "ml_predict_ns", Layer: obs.LayerDetect,
				Unit: "ns", Help: "host latency per ML prediction"}, mlPredictBuckets),
		}
		p.m.fits.Inc()
		p.m.fitNs.Add(uint64(time.Since(start)))
	}
	return nil
}

// Predict classifies one raw feature vector.
func (p *Pipeline) Predict(row []float64) int {
	if p.m == nil {
		return p.Model.Predict(p.post.Transform(p.pca.Transform(p.scaler.Transform(row))))
	}
	t0 := time.Now()
	out := p.Model.Predict(p.post.Transform(p.pca.Transform(p.scaler.Transform(row))))
	p.m.predicts.Inc()
	p.m.predictNs.Observe(uint64(time.Since(t0)))
	return out
}

// Name returns the underlying model name.
func (p *Pipeline) Name() string { return p.Model.Name() }

// EvaluatePipeline tallies a confusion matrix for the fitted pipeline.
func EvaluatePipeline(p *Pipeline, x [][]float64, y []int) Confusion {
	var c Confusion
	for i := range x {
		pred := p.Predict(x[i])
		switch {
		case pred == 1 && y[i] == 1:
			c.TP++
		case pred == 1 && y[i] == -1:
			c.FP++
		case pred == -1 && y[i] == -1:
			c.TN++
		default:
			c.FN++
		}
	}
	return c
}

// TrainTestSplit shuffles deterministically and splits the dataset.
func TrainTestSplit(x [][]float64, y []int, testFrac float64, seed int64) (xtr [][]float64, ytr []int, xte [][]float64, yte []int, err error) {
	if err := checkDataset(x, y); err != nil {
		return nil, nil, nil, nil, err
	}
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, nil, nil, fmt.Errorf("detect: testFrac %v out of (0,1)", testFrac)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(x))
	nTest := int(float64(len(x)) * testFrac)
	if nTest == 0 {
		nTest = 1
	}
	for i, idx := range perm {
		if i < nTest {
			xte = append(xte, x[idx])
			yte = append(yte, y[idx])
		} else {
			xtr = append(xtr, x[idx])
			ytr = append(ytr, y[idx])
		}
	}
	return xtr, ytr, xte, yte, nil
}
