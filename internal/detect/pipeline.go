package detect

import (
	"fmt"
	"math/rand"
)

// Pipeline is the paper's full ML detector: standardize, project with PCA
// (527 -> 11 in the paper), then classify.
type Pipeline struct {
	Components int // PCA dimensionality (default 11)
	Model      Model

	scaler *Scaler
	pca    *PCA
	// post standardizes the PCA projections (whitening): principal
	// components carry wildly different variances, which throws off
	// margin-based models.
	post *Scaler
}

// Fit trains the whole pipeline on labelled feature vectors.
func (p *Pipeline) Fit(x [][]float64, y []int) error {
	if p.Model == nil {
		return fmt.Errorf("pipeline: nil model")
	}
	if p.Components <= 0 {
		p.Components = 11
	}
	if err := checkDataset(x, y); err != nil {
		return err
	}
	p.scaler = FitScaler(x)
	scaled := p.scaler.TransformAll(x)
	k := p.Components
	if k > len(x[0]) {
		k = len(x[0])
	}
	if k > len(x) {
		k = len(x)
	}
	pca, err := FitPCA(scaled, k)
	if err != nil {
		return fmt.Errorf("pipeline: %w", err)
	}
	p.pca = pca
	proj := pca.TransformAll(scaled)
	p.post = FitScaler(proj)
	return p.Model.Fit(p.post.TransformAll(proj), y)
}

// Predict classifies one raw feature vector.
func (p *Pipeline) Predict(row []float64) int {
	return p.Model.Predict(p.post.Transform(p.pca.Transform(p.scaler.Transform(row))))
}

// Name returns the underlying model name.
func (p *Pipeline) Name() string { return p.Model.Name() }

// EvaluatePipeline tallies a confusion matrix for the fitted pipeline.
func EvaluatePipeline(p *Pipeline, x [][]float64, y []int) Confusion {
	var c Confusion
	for i := range x {
		pred := p.Predict(x[i])
		switch {
		case pred == 1 && y[i] == 1:
			c.TP++
		case pred == 1 && y[i] == -1:
			c.FP++
		case pred == -1 && y[i] == -1:
			c.TN++
		default:
			c.FN++
		}
	}
	return c
}

// TrainTestSplit shuffles deterministically and splits the dataset.
func TrainTestSplit(x [][]float64, y []int, testFrac float64, seed int64) (xtr [][]float64, ytr []int, xte [][]float64, yte []int, err error) {
	if err := checkDataset(x, y); err != nil {
		return nil, nil, nil, nil, err
	}
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, nil, nil, fmt.Errorf("detect: testFrac %v out of (0,1)", testFrac)
	}
	rng := rand.New(rand.NewSource(seed))
	perm := rng.Perm(len(x))
	nTest := int(float64(len(x)) * testFrac)
	if nTest == 0 {
		nTest = 1
	}
	for i, idx := range perm {
		if i < nTest {
			xte = append(xte, x[idx])
			yte = append(yte, y[idx])
		} else {
			xtr = append(xtr, x[idx])
			ytr = append(ytr, y[idx])
		}
	}
	return xtr, ytr, xte, yte, nil
}
