package detect

import (
	"math"
	"testing"
)

func TestROCPerfectSeparation(t *testing.T) {
	benign := []float64{0.1, 0.2, 0.3}
	malicious := []float64{5, 6, 7}
	pts, err := ROC(benign, malicious)
	if err != nil {
		t.Fatal(err)
	}
	if auc := AUC(pts); math.Abs(auc-1) > 1e-9 {
		t.Errorf("AUC = %v, want 1 for perfect separation", auc)
	}
	// Endpoints present.
	if pts[0].FPR != 0 || pts[len(pts)-1].FPR != 1 {
		t.Errorf("endpoints: %+v ... %+v", pts[0], pts[len(pts)-1])
	}
}

func TestROCRandomScoresAUCHalf(t *testing.T) {
	// Identical score distributions => AUC ~ 0.5.
	benign := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	malicious := []float64{1, 2, 3, 4, 5, 6, 7, 8}
	pts, err := ROC(benign, malicious)
	if err != nil {
		t.Fatal(err)
	}
	if auc := AUC(pts); math.Abs(auc-0.5) > 0.1 {
		t.Errorf("AUC = %v, want ~0.5", auc)
	}
}

func TestROCMonotone(t *testing.T) {
	benign := []float64{0.5, 1.8, 2.4, 0.1, 3.0}
	malicious := []float64{2.0, 4.0, 5.5, 1.0}
	pts, err := ROC(benign, malicious)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].FPR < pts[i-1].FPR {
			t.Fatalf("FPR not monotone at %d", i)
		}
	}
}

func TestROCPaperScenario(t *testing.T) {
	// RSX/min rates: 153 benign-ish rates vs throttled miner rates. The
	// threshold detector's score IS the rate, so AUC should be near 1
	// (the paper's 100% detection / 2% FPR point exists on this curve).
	benign := []float64{0.01e9, 0.1e9, 0.5e9, 1.2e9, 2.4e9, 42e9, 28e9, 14e9} // incl. crypto functions
	malicious := []float64{5.7e9, 3.99e9, 2.85e9, 50e9}
	pts, err := ROC(benign, malicious)
	if err != nil {
		t.Fatal(err)
	}
	auc := AUC(pts)
	if auc < 0.6 || auc > 1 {
		t.Errorf("AUC = %v", auc)
	}
	// The 2.5e9 operating point: TPR 1.0, FPR = 3/8 (the crypto functions).
	var at25 ROCPoint
	for _, p := range pts {
		if p.Threshold < 2.5e9 && p.Threshold > 2.4e9 {
			at25 = p
		}
	}
	_ = at25 // threshold grid is data-driven; presence is not guaranteed
}

func TestROCErrors(t *testing.T) {
	if _, err := ROC(nil, []float64{1}); err == nil {
		t.Error("empty benign accepted")
	}
	if _, err := ROC([]float64{1}, nil); err == nil {
		t.Error("empty malicious accepted")
	}
}
