package detect

import (
	"testing"
)

func TestRandomForestSeparatesBlobs(t *testing.T) {
	xtr, ytr := blobs(60, 8, 4, 21)
	xte, yte := blobs(30, 8, 4, 22)
	rf := &RandomForest{Trees: 15}
	if err := rf.Fit(xtr, ytr); err != nil {
		t.Fatal(err)
	}
	c := Evaluate(rf, xte, yte)
	if c.Accuracy() < 0.93 {
		t.Errorf("random forest accuracy %.3f (%s)", c.Accuracy(), c)
	}
}

func TestGaussianNBSeparatesBlobs(t *testing.T) {
	xtr, ytr := blobs(60, 8, 4, 23)
	xte, yte := blobs(30, 8, 4, 24)
	nb := &GaussianNB{}
	if err := nb.Fit(xtr, ytr); err != nil {
		t.Fatal(err)
	}
	c := Evaluate(nb, xte, yte)
	if c.Accuracy() < 0.95 {
		t.Errorf("naive bayes accuracy %.3f (%s)", c.Accuracy(), c)
	}
}

func TestEnsembleModelsRejectBadData(t *testing.T) {
	for _, m := range []Model{&RandomForest{}, &GaussianNB{}} {
		if err := m.Fit(nil, nil); err == nil {
			t.Errorf("%s accepted empty data", m.Name())
		}
	}
	// NB with a single class must fail.
	nb := &GaussianNB{}
	if err := nb.Fit([][]float64{{1}, {2}}, []int{1, 1}); err == nil {
		t.Error("single-class NB accepted")
	}
}

func TestCrossValidate(t *testing.T) {
	x, y := blobs(50, 5, 4, 25)
	folds, err := CrossValidate(func() Model { return &SVM{} }, x, y, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	if acc := MeanAccuracy(folds); acc < 0.95 {
		t.Errorf("CV accuracy %.3f", acc)
	}
	// Every sample appears in exactly one test fold.
	var total int
	for _, c := range folds {
		total += c.TP + c.FP + c.TN + c.FN
	}
	if total != len(x) {
		t.Errorf("CV covered %d of %d samples", total, len(x))
	}
	if _, err := CrossValidate(func() Model { return &SVM{} }, x, y, 1, 1); err == nil {
		t.Error("1 fold accepted")
	}
}

func TestRandomForestDeterministicForSeed(t *testing.T) {
	x, y := blobs(40, 6, 3, 26)
	run := func() Confusion {
		rf := &RandomForest{Trees: 10, Seed: 5}
		if err := rf.Fit(x, y); err != nil {
			t.Fatal(err)
		}
		return Evaluate(rf, x, y)
	}
	if run() != run() {
		t.Error("random forest not deterministic for fixed seed")
	}
}

func TestMeanAccuracyEmpty(t *testing.T) {
	if MeanAccuracy(nil) != 0 {
		t.Error("empty mean accuracy != 0")
	}
}
