package detect

import (
	"fmt"
	"sort"
)

// ROCPoint is one operating point of a score-threshold detector.
type ROCPoint struct {
	Threshold float64
	TPR       float64
	FPR       float64
}

// ROC computes the receiver operating characteristic of a scalar-score
// detector (higher score = more malicious) from labelled scores. Points
// are returned in increasing-FPR order, including the (0,0) and (1,1)
// endpoints.
func ROC(benignScores, maliciousScores []float64) ([]ROCPoint, error) {
	if len(benignScores) == 0 || len(maliciousScores) == 0 {
		return nil, fmt.Errorf("detect: ROC needs both classes (benign %d, malicious %d)",
			len(benignScores), len(maliciousScores))
	}
	// Candidate thresholds: every distinct score.
	all := make([]float64, 0, len(benignScores)+len(maliciousScores))
	all = append(all, benignScores...)
	all = append(all, maliciousScores...)
	sort.Float64s(all)

	points := make([]ROCPoint, 0, len(all)+2)
	add := func(th float64) {
		var tp, fp int
		for _, s := range maliciousScores {
			if s > th {
				tp++
			}
		}
		for _, s := range benignScores {
			if s > th {
				fp++
			}
		}
		points = append(points, ROCPoint{
			Threshold: th,
			TPR:       float64(tp) / float64(len(maliciousScores)),
			FPR:       float64(fp) / float64(len(benignScores)),
		})
	}
	add(all[len(all)-1]) // strictest: everything benign
	for i := len(all) - 1; i >= 0; i-- {
		if i == len(all)-1 || all[i] != all[i+1] {
			if i > 0 {
				add(all[i-1] + (all[i]-all[i-1])/2)
			}
		}
	}
	add(all[0] - 1) // loosest: everything malicious

	sort.Slice(points, func(i, j int) bool {
		if points[i].FPR != points[j].FPR {
			return points[i].FPR < points[j].FPR
		}
		return points[i].TPR < points[j].TPR
	})
	return points, nil
}

// AUC integrates the ROC curve with the trapezoid rule.
func AUC(points []ROCPoint) float64 {
	var area float64
	for i := 1; i < len(points); i++ {
		dx := points[i].FPR - points[i-1].FPR
		area += dx * (points[i].TPR + points[i-1].TPR) / 2
	}
	return area
}
