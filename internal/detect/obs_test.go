package detect

import (
	"testing"

	"darkarts/internal/obs"
)

// TestPipelineObsMetrics: a pipeline fitted with a registry attached must
// record fit and per-prediction metrics; without one, Predict stays on the
// uninstrumented path and the registry stays empty.
func TestPipelineObsMetrics(t *testing.T) {
	x, y := blobs(100, 8, 6, 11)
	reg := obs.NewRegistry()
	p := &Pipeline{Components: 4, Model: &SVM{}, Obs: reg}
	if err := p.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	const n = 25
	for i := 0; i < n; i++ {
		p.Predict(x[i])
	}

	if v, ok := reg.Value("ml_fit_total", ""); !ok || v != 1 {
		t.Errorf("ml_fit_total = %v, %v; want 1", v, ok)
	}
	if v, ok := reg.Value("ml_fit_ns_total", ""); !ok || v <= 0 {
		t.Errorf("ml_fit_ns_total = %v, %v; want > 0", v, ok)
	}
	if v, ok := reg.Value("ml_predict_total", ""); !ok || v != n {
		t.Errorf("ml_predict_total = %v, %v; want %d", v, ok, n)
	}
	found := false
	for _, m := range reg.Snapshot() {
		if m.Name == "ml_predict_ns" {
			found = true
			if m.Layer != obs.LayerDetect {
				t.Errorf("ml_predict_ns layer = %q", m.Layer)
			}
			if m.Value != n {
				t.Errorf("ml_predict_ns count = %d, want %d", m.Value, n)
			}
		}
	}
	if !found {
		t.Error("ml_predict_ns histogram not registered")
	}

	// No registry: Predict must keep working on the fast path.
	q := &Pipeline{Components: 4, Model: &SVM{}}
	if err := q.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	if got, want := q.Predict(x[0]), p.Predict(x[0]); got != want {
		t.Errorf("instrumented/uninstrumented pipelines disagree: %d vs %d", got, want)
	}
}
