// Package detect implements the paper's two detection mechanisms: the
// RSX-rate threshold classifier (Section VI-C: 2.5e9 RSX instructions per
// minute, 100% miner detection, <2% false positives), and the supplemental
// machine-learning pipeline of Section VI-E (PCA from 527 to 11 features,
// then SVM / logistic regression / decision tree / kNN) that extends
// detection to aggressively throttled miners.
//
// The ML pipeline optionally reports fit and per-prediction latency
// metrics through an attached obs.Registry (Pipeline.Obs); see
// OBSERVABILITY.md.
package detect
