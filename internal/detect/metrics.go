package detect

import (
	"fmt"
	"math"
)

// Confusion is a binary confusion matrix (+1 = malicious positive class).
type Confusion struct {
	TP, FP, TN, FN int
}

// Evaluate runs the model over labelled data and tallies the confusion
// matrix.
func Evaluate(m Model, x [][]float64, y []int) Confusion {
	var c Confusion
	for i := range x {
		pred := m.Predict(x[i])
		switch {
		case pred == 1 && y[i] == 1:
			c.TP++
		case pred == 1 && y[i] == -1:
			c.FP++
		case pred == -1 && y[i] == -1:
			c.TN++
		default:
			c.FN++
		}
	}
	return c
}

// Accuracy returns (TP+TN)/total.
func (c Confusion) Accuracy() float64 {
	n := c.TP + c.FP + c.TN + c.FN
	if n == 0 {
		return 0
	}
	return float64(c.TP+c.TN) / float64(n)
}

// DetectionRate returns the true positive rate TP/(TP+FN).
func (c Confusion) DetectionRate() float64 {
	if c.TP+c.FN == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FN)
}

// FPR returns the false positive rate FP/(FP+TN).
func (c Confusion) FPR() float64 {
	if c.FP+c.TN == 0 {
		return 0
	}
	return float64(c.FP) / float64(c.FP+c.TN)
}

// Precision returns TP/(TP+FP).
func (c Confusion) Precision() float64 {
	if c.TP+c.FP == 0 {
		return 0
	}
	return float64(c.TP) / float64(c.TP+c.FP)
}

// String renders the matrix compactly.
func (c Confusion) String() string {
	return fmt.Sprintf("tp=%d fp=%d tn=%d fn=%d acc=%.3f tpr=%.3f fpr=%.3f",
		c.TP, c.FP, c.TN, c.FN, c.Accuracy(), c.DetectionRate(), c.FPR())
}

// Scaler standardizes features to zero mean / unit variance, fitted on
// training data only.
type Scaler struct {
	mean, std []float64
}

// FitScaler learns per-feature statistics.
func FitScaler(x [][]float64) *Scaler {
	if len(x) == 0 {
		return &Scaler{}
	}
	d := len(x[0])
	s := &Scaler{mean: make([]float64, d), std: make([]float64, d)}
	for _, row := range x {
		for j, v := range row {
			s.mean[j] += v
		}
	}
	for j := range s.mean {
		s.mean[j] /= float64(len(x))
	}
	for _, row := range x {
		for j, v := range row {
			dv := v - s.mean[j]
			s.std[j] += dv * dv
		}
	}
	for j := range s.std {
		s.std[j] = math.Sqrt(s.std[j] / float64(len(x)))
		if s.std[j] < 1e-12 {
			s.std[j] = 1
		}
	}
	return s
}

// Transform standardizes one row.
func (s *Scaler) Transform(row []float64) []float64 {
	out := make([]float64, len(row))
	for j, v := range row {
		out[j] = (v - s.mean[j]) / s.std[j]
	}
	return out
}

// TransformAll standardizes all rows.
func (s *Scaler) TransformAll(x [][]float64) [][]float64 {
	out := make([][]float64, len(x))
	for i, row := range x {
		out[i] = s.Transform(row)
	}
	return out
}
