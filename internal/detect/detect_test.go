package detect

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// blobs generates two labelled Gaussian clusters in d dimensions, centers
// separated along every axis by sep.
func blobs(n, d int, sep float64, seed int64) ([][]float64, []int) {
	rng := rand.New(rand.NewSource(seed))
	x := make([][]float64, 0, 2*n)
	y := make([]int, 0, 2*n)
	for i := 0; i < n; i++ {
		a := make([]float64, d)
		b := make([]float64, d)
		for j := 0; j < d; j++ {
			a[j] = rng.NormFloat64()
			b[j] = sep + rng.NormFloat64()
		}
		x = append(x, a, b)
		y = append(y, -1, 1)
	}
	return x, y
}

func TestThresholdDetector(t *testing.T) {
	d := DefaultThreshold()
	if d.Malicious(2.4e9) {
		t.Error("2.4B/min flagged")
	}
	if !d.Malicious(5.7e9) {
		t.Error("Monero rate not flagged")
	}
}

func TestSweep(t *testing.T) {
	benign := []float64{0.1e9, 0.5e9, 2.4e9}
	malicious := []float64{5.7e9, 50e9, 3.99e9}
	pts := Sweep([]float64{1e9, 2.5e9, 10e9}, benign, malicious)
	if pts[1].DetectionRate != 1 || pts[1].FPR != 0 {
		t.Errorf("2.5B point: %+v", pts[1])
	}
	if pts[0].FPR == 0 {
		t.Error("1B threshold should have false positives")
	}
	if pts[2].DetectionRate == 1 {
		t.Error("10B threshold should miss miners")
	}
}

func TestPCARecoverseDominantDirection(t *testing.T) {
	// Data varies strongly along feature 0, weakly along feature 1.
	rng := rand.New(rand.NewSource(5))
	var x [][]float64
	for i := 0; i < 200; i++ {
		x = append(x, []float64{10 * rng.NormFloat64(), rng.NormFloat64(), 0.01 * rng.NormFloat64()})
	}
	p, err := FitPCA(x, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.K() != 2 {
		t.Fatalf("K = %d", p.K())
	}
	vars := p.ExplainedVariances()
	if vars[0] < vars[1] {
		t.Error("variances not descending")
	}
	// First component should align with axis 0.
	c0 := p.components[0]
	if math.Abs(c0[0]) < 0.99 {
		t.Errorf("first component = %v, want axis 0", c0)
	}
	// Components are unit length and orthogonal.
	if n := dot(c0, c0); math.Abs(n-1) > 1e-9 {
		t.Errorf("component norm = %v", n)
	}
	if o := math.Abs(dot(c0, p.components[1])); o > 1e-6 {
		t.Errorf("components not orthogonal: %v", o)
	}
}

func TestPCADualMatchesVarianceBudget(t *testing.T) {
	// With fewer samples than features (the paper's 272 < 527), the dual
	// path must still produce valid projections.
	rng := rand.New(rand.NewSource(6))
	var x [][]float64
	for i := 0; i < 40; i++ {
		row := make([]float64, 100)
		for j := range row {
			row[j] = rng.NormFloat64() * float64(1+j%3)
		}
		x = append(x, row)
	}
	p, err := FitPCA(x, 11)
	if err != nil {
		t.Fatal(err)
	}
	proj := p.TransformAll(x)
	if len(proj[0]) != p.K() {
		t.Errorf("projection dim %d != K %d", len(proj[0]), p.K())
	}
	// Projected variance along component 0 must equal the eigenvalue.
	var mean, varr float64
	for _, r := range proj {
		mean += r[0]
	}
	mean /= float64(len(proj))
	for _, r := range proj {
		varr += (r[0] - mean) * (r[0] - mean)
	}
	varr /= float64(len(proj) - 1)
	if ev := p.ExplainedVariances()[0]; math.Abs(varr-ev)/ev > 0.05 {
		t.Errorf("projected variance %v != eigenvalue %v", varr, ev)
	}
}

func TestPCAErrors(t *testing.T) {
	if _, err := FitPCA(nil, 1); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := FitPCA([][]float64{{1, 2}, {3, 4}}, 5); err == nil {
		t.Error("k > d accepted")
	}
	if _, err := FitPCA([][]float64{{1, 2}, {3}}, 1); err == nil {
		t.Error("ragged input accepted")
	}
	if _, err := FitPCA([][]float64{{1, 1}, {1, 1}, {1, 1}}, 1); err == nil {
		t.Error("zero-variance input accepted")
	}
}

func TestModelsSeparateBlobs(t *testing.T) {
	xtrain, ytrain := blobs(60, 6, 4, 7)
	xtest, ytest := blobs(30, 6, 4, 8)
	models := []Model{
		&SVM{},
		&LogisticRegression{},
		&DecisionTree{},
		&KNN{},
	}
	for _, m := range models {
		if err := m.Fit(xtrain, ytrain); err != nil {
			t.Fatalf("%s: %v", m.Name(), err)
		}
		c := Evaluate(m, xtest, ytest)
		if c.Accuracy() < 0.95 {
			t.Errorf("%s accuracy %.3f on separable blobs (%s)", m.Name(), c.Accuracy(), c)
		}
	}
}

func TestModelsRejectBadData(t *testing.T) {
	models := []Model{&SVM{}, &LogisticRegression{}, &DecisionTree{}, &KNN{}}
	for _, m := range models {
		if err := m.Fit(nil, nil); err == nil {
			t.Errorf("%s accepted empty data", m.Name())
		}
		if err := m.Fit([][]float64{{1}}, []int{0}); err == nil {
			t.Errorf("%s accepted label 0", m.Name())
		}
		if err := m.Fit([][]float64{{1}, {2, 3}}, []int{1, -1}); err == nil {
			t.Errorf("%s accepted ragged rows", m.Name())
		}
	}
}

func TestPipelineEndToEnd(t *testing.T) {
	// High-dimensional blobs, fewer informative dims: the pipeline must
	// scale, project, and classify well.
	x, y := blobs(80, 60, 3, 9)
	xtr, ytr, xte, yte, err := TrainTestSplit(x, y, 0.3, 1)
	if err != nil {
		t.Fatal(err)
	}
	p := &Pipeline{Components: 11, Model: &SVM{}}
	if err := p.Fit(xtr, ytr); err != nil {
		t.Fatal(err)
	}
	c := EvaluatePipeline(p, xte, yte)
	if c.Accuracy() < 0.9 {
		t.Errorf("pipeline accuracy %.3f (%s)", c.Accuracy(), c)
	}
}

func TestPipelineErrors(t *testing.T) {
	p := &Pipeline{}
	if err := p.Fit([][]float64{{1}}, []int{1}); err == nil {
		t.Error("nil model accepted")
	}
	p = &Pipeline{Model: &SVM{}}
	if err := p.Fit(nil, nil); err == nil {
		t.Error("empty data accepted")
	}
}

func TestTrainTestSplit(t *testing.T) {
	x, y := blobs(50, 3, 2, 10)
	xtr, ytr, xte, yte, err := TrainTestSplit(x, y, 0.25, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(xtr)+len(xte) != len(x) || len(ytr) != len(xtr) || len(yte) != len(xte) {
		t.Error("split sizes inconsistent")
	}
	if len(xte) != len(x)/4 {
		t.Errorf("test size = %d", len(xte))
	}
	if _, _, _, _, err := TrainTestSplit(x, y, 1.5, 0); err == nil {
		t.Error("bad fraction accepted")
	}
}

func TestScalerProperties(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		var x [][]float64
		for i := 0; i < 50; i++ {
			x = append(x, []float64{rng.NormFloat64()*3 + 5, rng.Float64() * 100})
		}
		s := FitScaler(x)
		scaled := s.TransformAll(x)
		for j := 0; j < 2; j++ {
			var mean float64
			for _, r := range scaled {
				mean += r[j]
			}
			mean /= float64(len(scaled))
			if math.Abs(mean) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 8, FP: 1, TN: 9, FN: 2}
	if got := c.Accuracy(); math.Abs(got-0.85) > 1e-9 {
		t.Errorf("accuracy = %v", got)
	}
	if got := c.DetectionRate(); math.Abs(got-0.8) > 1e-9 {
		t.Errorf("tpr = %v", got)
	}
	if got := c.FPR(); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("fpr = %v", got)
	}
	if got := c.Precision(); math.Abs(got-8.0/9.0) > 1e-9 {
		t.Errorf("precision = %v", got)
	}
	var zero Confusion
	if zero.Accuracy() != 0 || zero.DetectionRate() != 0 || zero.FPR() != 0 || zero.Precision() != 0 {
		t.Error("zero confusion not handled")
	}
}
