package trace

import (
	"math"
	"testing"

	"darkarts/internal/isa"
)

func record(r *Recorder, ops ...isa.Op) {
	for _, op := range ops {
		r.Retired(0, isa.Inst{Op: op})
	}
}

func TestRecorderUnigrams(t *testing.T) {
	r := NewRecorder(false)
	record(r, isa.XOR, isa.XOR, isa.ADD, isa.ROL)
	if r.Total() != 4 {
		t.Errorf("Total = %d", r.Total())
	}
	if r.Count(isa.XOR) != 2 || r.Count(isa.ADD) != 1 || r.Count(isa.ROL) != 1 {
		t.Errorf("counts wrong: %v", r.Histogram())
	}
	if r.ClassCount(isa.ClassXor) != 2 || r.ClassCount(isa.ClassRotate) != 1 {
		t.Error("class counts wrong")
	}
}

func TestRecorderBigrams(t *testing.T) {
	r := NewRecorder(true)
	record(r, isa.MOV, isa.XOR, isa.MOV, isa.XOR)
	if got := r.bigrams[[2]isa.Op{isa.MOV, isa.XOR}]; got != 2 {
		t.Errorf("MOV>XOR = %d", got)
	}
	if got := r.bigrams[[2]isa.Op{isa.XOR, isa.MOV}]; got != 1 {
		t.Errorf("XOR>MOV = %d", got)
	}
}

func TestRecorderReset(t *testing.T) {
	r := NewRecorder(true)
	record(r, isa.ADD, isa.ADD)
	r.Reset()
	if r.Total() != 0 || r.Count(isa.ADD) != 0 {
		t.Error("Reset incomplete")
	}
	v := r.FeatureVector()
	for _, x := range v {
		if x != 0 {
			t.Fatal("feature vector not zero after reset")
		}
	}
}

func TestFeatureVectorDimAndNormalization(t *testing.T) {
	r := NewRecorder(true)
	record(r, isa.XOR, isa.XOR, isa.ADD, isa.ADD, isa.ADD, isa.ROL, isa.ROL, isa.ROL)
	v := r.FeatureVector()
	if len(v) != FeatureDim {
		t.Fatalf("dim = %d", len(v))
	}
	// Unigram slots must sum to 1 (every op counted once).
	var uniSum float64
	for i := 0; i < len(isa.AllOps()); i++ {
		uniSum += v[i]
	}
	if math.Abs(uniSum-1) > 1e-12 {
		t.Errorf("unigram sum = %v", uniSum)
	}
	for _, x := range v {
		if x < 0 || x > 1 {
			t.Fatalf("feature out of range: %v", x)
		}
	}
}

func TestFeatureNamesAligned(t *testing.T) {
	names := FeatureNames()
	if len(names) != FeatureDim {
		t.Fatalf("names dim = %d", len(names))
	}
	if names[0] != isa.AllOps()[0].String() {
		t.Errorf("first name = %q", names[0])
	}
	seenPair := false
	for _, n := range names {
		if n == "MOV>XOR" {
			seenPair = true
		}
	}
	if !seenPair {
		t.Error("bigram names missing")
	}
}

func TestTopOps(t *testing.T) {
	r := NewRecorder(false)
	record(r, isa.XOR, isa.XOR, isa.XOR, isa.ADD, isa.ADD, isa.ROL)
	top := r.TopOps(2)
	if len(top) != 2 || top[0].Op != isa.XOR || top[1].Op != isa.ADD {
		t.Errorf("TopOps = %v", top)
	}
	if top[0].String() != "XOR:3" {
		t.Errorf("String = %q", top[0].String())
	}
}

func TestFeatureVectorBigramsPopulated(t *testing.T) {
	r := NewRecorder(true)
	for i := 0; i < 100; i++ {
		record(r, isa.MOV, isa.XOR)
	}
	v := r.FeatureVector()
	var biSum float64
	for i := len(isa.AllOps()); i < FeatureDim; i++ {
		biSum += v[i]
	}
	if biSum == 0 {
		t.Error("bigram features all zero despite bigram recording")
	}
}
