package trace

import (
	"fmt"
	"sort"

	"darkarts/internal/cpu"
	"darkarts/internal/isa"
)

// Recorder counts retired instructions by opcode and, optionally, by opcode
// bigram. Attach it to a core with Core.SetObserver for bounded windows —
// it is the moral equivalent of re-running the workload under SDE.
type Recorder struct {
	unigrams [isa.NumOps]uint64
	bigrams  map[[2]isa.Op]uint64
	prev     isa.Op
	total    uint64
	withBi   bool
}

var _ cpu.RetireObserver = (*Recorder)(nil)

// NewRecorder returns a Recorder. withBigrams additionally counts adjacent
// opcode pairs (needed for the full ML feature space).
func NewRecorder(withBigrams bool) *Recorder {
	r := &Recorder{withBi: withBigrams}
	if withBigrams {
		r.bigrams = make(map[[2]isa.Op]uint64)
	}
	return r
}

// Retired implements cpu.RetireObserver.
func (r *Recorder) Retired(_ int, in isa.Inst) {
	r.unigrams[in.Op]++
	r.total++
	if r.withBi {
		if r.prev != isa.OpInvalid {
			r.bigrams[[2]isa.Op{r.prev, in.Op}]++
		}
		r.prev = in.Op
	}
}

// Total returns the number of recorded instructions.
func (r *Recorder) Total() uint64 { return r.total }

// Count returns the count for one opcode.
func (r *Recorder) Count(op isa.Op) uint64 { return r.unigrams[op] }

// ClassCount sums counts over a class.
func (r *Recorder) ClassCount(c isa.Class) uint64 {
	var sum uint64
	for _, op := range isa.AllOps() {
		if op.Is(c) {
			sum += r.unigrams[op]
		}
	}
	return sum
}

// Histogram returns a copy of the unigram histogram.
func (r *Recorder) Histogram() [isa.NumOps]uint64 { return r.unigrams }

// Reset clears all counts.
func (r *Recorder) Reset() {
	r.unigrams = [isa.NumOps]uint64{}
	r.total = 0
	r.prev = isa.OpInvalid
	if r.withBi {
		r.bigrams = make(map[[2]isa.Op]uint64)
	}
}

// TopOps returns the n most frequent opcodes with counts, descending.
func (r *Recorder) TopOps(n int) []OpCount {
	var all []OpCount
	for _, op := range isa.AllOps() {
		if c := r.unigrams[op]; c > 0 {
			all = append(all, OpCount{Op: op, Count: c})
		}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].Count != all[j].Count {
			return all[i].Count > all[j].Count
		}
		return all[i].Op < all[j].Op
	})
	if n < len(all) {
		all = all[:n]
	}
	return all
}

// OpCount pairs an opcode with its execution count.
type OpCount struct {
	Op    isa.Op
	Count uint64
}

// String renders "XOR:123".
func (o OpCount) String() string { return fmt.Sprintf("%s:%d", o.Op, o.Count) }

// FeatureDim is the dimensionality of the ML feature space. The paper's
// dataset had 527 features (x86 has roughly that many mnemonics); our ISA
// is smaller, so the space is unigram frequencies plus a fixed enumeration
// of opcode-bigram frequencies, truncated to exactly 527 dimensions.
const FeatureDim = 527

// bigramAlphabet is the fixed opcode alphabet whose pairs fill the bigram
// feature slots, ordered by typical frequency.
var bigramAlphabet = []isa.Op{
	isa.MOV, isa.MOVI, isa.LD, isa.ST, isa.LD32, isa.ST32,
	isa.ADD, isa.ADDI, isa.SUB, isa.SUBI, isa.IMUL, isa.MUL,
	isa.AND, isa.ANDI, isa.OR, isa.XOR, isa.XORI,
	isa.SHL, isa.SHLI, isa.SHR, isa.SHRI,
	isa.ROL, isa.ROLI, isa.ROR, isa.RORI,
}

// FeatureVector returns the normalized FeatureDim-dimensional vector:
// unigram frequencies (fraction of total) for every opcode, then bigram
// frequencies over the fixed alphabet in row-major order, truncated to fit.
// A zero-instruction recorder yields the zero vector.
func (r *Recorder) FeatureVector() []float64 {
	v := make([]float64, FeatureDim)
	if r.total == 0 {
		return v
	}
	inv := 1 / float64(r.total)
	i := 0
	for _, op := range isa.AllOps() {
		if i >= FeatureDim {
			break
		}
		v[i] = float64(r.unigrams[op]) * inv
		i++
	}
	if r.withBi {
		for _, a := range bigramAlphabet {
			for _, b := range bigramAlphabet {
				if i >= FeatureDim {
					return v
				}
				v[i] = float64(r.bigrams[[2]isa.Op{a, b}]) * inv
				i++
			}
		}
	}
	return v
}

// FeatureNames returns human-readable labels for each feature dimension,
// aligned with FeatureVector.
func FeatureNames() []string {
	names := make([]string, 0, FeatureDim)
	for _, op := range isa.AllOps() {
		if len(names) >= FeatureDim {
			break
		}
		names = append(names, op.String())
	}
	for _, a := range bigramAlphabet {
		for _, b := range bigramAlphabet {
			if len(names) >= FeatureDim {
				return names
			}
			names = append(names, a.String()+">"+b.String())
		}
	}
	for len(names) < FeatureDim {
		names = append(names, "pad")
	}
	return names
}
