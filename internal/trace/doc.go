// Package trace provides the instruction-recording facility the paper's
// methodology attributes to Intel's Software Development Emulator (SDE)
// (Section V): per-opcode execution histograms for workload
// characterization, and the 527-dimensional feature vectors consumed by
// the machine-learning models in Section VI-E.
package trace
