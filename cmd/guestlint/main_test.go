package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"darkarts/internal/gsa"
)

// TestManifestMatchesCommitted is the drift gate: a fresh registry sweep
// must reproduce the committed golden score manifest byte for byte.
// Retuning a gsa weight, changing a registry program, or adding one shows
// up here; regenerate with `make guestlint` and review the diff.
func TestManifestMatchesCommitted(t *testing.T) {
	fresh := filepath.Join(t.TempDir(), "guestlint_manifest.txt")
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-all", "-manifest", fresh}, &stdout, &stderr); code != 0 {
		t.Fatalf("guestlint -all exit %d\n%s", code, stderr.String())
	}
	got, err := os.ReadFile(fresh)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("..", "..", "internal", "workload", "guestlint_manifest.txt"))
	if err != nil {
		t.Fatalf("reading committed manifest: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("score manifest drifted from internal/workload/guestlint_manifest.txt; regenerate with\n\tmake guestlint\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestRegistryRanking decodes the JSON sweep and re-checks the contract
// end to end: miners flagged with at least one PoW loop, benign programs
// clean, and every miner strictly above every benign score.
func TestRegistryRanking(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-all", "-json"}, &stdout, &stderr); code != 0 {
		t.Fatalf("guestlint -all -json exit %d\n%s", code, stderr.String())
	}
	var reports []report
	if err := json.Unmarshal(stdout.Bytes(), &reports); err != nil {
		t.Fatalf("decoding -json output: %v\n%s", err, stdout.String())
	}
	if len(reports) < 6 {
		t.Fatalf("only %d reports; registry sweep incomplete", len(reports))
	}
	minMiner, maxBenign := 0.0, 0.0
	miners := 0
	for _, r := range reports {
		if r.Miner {
			miners++
			if !r.Static.Flagged() || r.Static.PoWLoops == 0 {
				t.Errorf("miner %q: flagged=%v pow=%d", r.Name, r.Static.Flagged(), r.Static.PoWLoops)
			}
			if minMiner == 0 || r.Static.RiskScore < minMiner {
				minMiner = r.Static.RiskScore
			}
		} else {
			if r.Static.Flagged() {
				t.Errorf("benign %q flagged: risk %.3f", r.Name, r.Static.RiskScore)
			}
			if r.Static.RiskScore > maxBenign {
				maxBenign = r.Static.RiskScore
			}
		}
	}
	if miners < 2 {
		t.Fatalf("registry has %d miners, want >= 2", miners)
	}
	if minMiner <= maxBenign {
		t.Errorf("ranking inversion: min miner %.3f <= max benign %.3f", minMiner, maxBenign)
	}
}

// TestAnalyzeSourceFile covers the .s path: assemble a small loop and
// report its profile under the file's base name.
func TestAnalyzeSourceFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "rotator.s")
	src := `
    MOVI r1, 0x1234
loop:
    ROLI r1, r1, 7
    XORI r1, r1, 0x55
    ADDI r2, r2, 1
    CMPI r2, 100
    JNE  loop
    HALT
`
	if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{path}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit %d\n%s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "rotator") {
		t.Errorf("output missing program name:\n%s", out)
	}
	if !strings.Contains(out, "clean") {
		t.Errorf("tiny rotate loop should be clean (threshold %.1f):\n%s", gsa.RiskFlagThreshold, out)
	}
}

// TestUsageErrors pins the exit-2 surface: no inputs, and -manifest
// without -all.
func TestUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Errorf("no args: exit %d, want 2", code)
	}
	if code := run([]string{"-manifest", "x"}, &stdout, &stderr); code != 2 {
		t.Errorf("-manifest without -all: exit %d, want 2", code)
	}
}
