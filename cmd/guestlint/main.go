// Command guestlint is the guest-program static analyzer CLI: it runs
// internal/gsa (CFG construction, natural-loop discovery, per-loop RSX
// density and PoW-structure scoring) over assembled ISA programs and
// reports each program's static profile — the same pre-screening the
// fleet applies at workload admission. With -all it sweeps the workload
// program registry and enforces the ranking contract that makes the
// screen useful: every miner must be statically flagged and outscore
// every benign program (zero inversions). `make guestlint` wires the
// sweep into the tier-1 gate and regenerates the committed golden score
// manifest (internal/workload/guestlint_manifest.txt) in place; the cmd
// test fails if a committed manifest drifts from a fresh sweep, so any
// retuning of the scoring model is reviewed like any other golden
// change. See DESIGN.md §5h and EXPERIMENTS.md.
//
// Usage:
//
//	guestlint prog.s [prog2.s ...]   # assemble + analyze source files
//	guestlint -all                   # sweep the ISA program registry
//	guestlint -all -json             # machine-readable profiles
//	guestlint -all -manifest internal/workload/guestlint_manifest.txt
//
// Exit status is 1 when the -all ranking contract is violated (a benign
// program scores at or above a miner, a miner is unflagged, or a benign
// program is flagged), 2 on usage, read, or assembly errors.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"darkarts/internal/gsa"
	"darkarts/internal/isa"
	"darkarts/internal/workload"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// report is one analyzed program: the registry's ground-truth label (Miner
// is false for file arguments) plus the full static profile.
type report struct {
	Name   string            `json:"name"`
	Miner  bool              `json:"miner"`
	Static gsa.StaticProfile `json:"static"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("guestlint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	all := fs.Bool("all", false, "analyze every workload registry program and enforce the miner/benign ranking contract")
	asJSON := fs.Bool("json", false, "emit reports as a JSON array instead of the table")
	manifest := fs.String("manifest", "", "with -all: (re)write the golden score manifest to this file")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if !*all && fs.NArg() == 0 {
		fmt.Fprintln(stderr, "guestlint: nothing to analyze (pass .s files or -all)")
		fs.Usage()
		return 2
	}
	if *manifest != "" && !*all {
		fmt.Fprintln(stderr, "guestlint: -manifest requires -all (the manifest pins the registry sweep)")
		return 2
	}

	var reports []report
	if *all {
		for _, e := range workload.ProgramRegistry() {
			reports = append(reports, report{Name: e.Name, Miner: e.Miner, Static: gsa.Analyze(e.Build())})
		}
	}
	for _, path := range fs.Args() {
		src, err := os.ReadFile(path)
		if err != nil {
			fmt.Fprintf(stderr, "guestlint: %v\n", err)
			return 2
		}
		prog, err := isa.Assemble(string(src))
		if err != nil {
			fmt.Fprintf(stderr, "guestlint: %s: %v\n", path, err)
			return 2
		}
		// The assembler defaults the name to "asm" when the source has no
		// .name directive; the file's base name is more useful here.
		if prog.Name == "" || prog.Name == "asm" {
			prog.Name = strings.TrimSuffix(filepath.Base(path), ".s")
		}
		reports = append(reports, report{Name: prog.Name, Static: gsa.Analyze(prog)})
	}

	if *asJSON {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			fmt.Fprintf(stderr, "guestlint: %v\n", err)
			return 2
		}
	} else {
		printTable(stdout, reports)
	}

	status := 0
	if *all {
		for _, line := range rankingViolations(reports) {
			fmt.Fprintln(stderr, "guestlint:", line)
			status = 1
		}
	}
	if *manifest != "" {
		if err := os.WriteFile(*manifest, []byte(manifestText(reports)), 0o644); err != nil {
			fmt.Fprintf(stderr, "guestlint: %v\n", err)
			return 2
		}
	}
	return status
}

// printTable renders the human one-line-per-program view, hottest loop
// inline.
func printTable(w io.Writer, reports []report) {
	fmt.Fprintf(w, "%-14s %6s %6s %6s %8s %8s %4s %7s  %s\n",
		"PROGRAM", "INSTS", "FUNCS", "LOOPS", "DENSITY", "LOOPDEN", "POW", "RISK", "VERDICT")
	for _, r := range reports {
		verdict := "clean"
		if r.Static.Flagged() {
			verdict = "FLAGGED"
		}
		if r.Miner {
			verdict += " (miner)"
		}
		fmt.Fprintf(w, "%-14s %6d %6d %6d %8.3f %8.3f %4d %7.3f  %s\n",
			r.Name, r.Static.Insts, r.Static.Funcs, r.Static.Loops,
			r.Static.RSXDensity, r.Static.LoopRSXDensity,
			r.Static.PoWLoops, r.Static.RiskScore, verdict)
	}
}

// rankingViolations enforces the registry contract: miners flagged, benign
// clean, and every miner strictly above every benign program's risk score.
func rankingViolations(reports []report) []string {
	var out []string
	for _, r := range reports {
		if r.Miner && !r.Static.Flagged() {
			out = append(out, fmt.Sprintf("miner %q not statically flagged (risk %.3f < %.1f)",
				r.Name, r.Static.RiskScore, gsa.RiskFlagThreshold))
		}
		if !r.Miner && r.Static.Flagged() {
			out = append(out, fmt.Sprintf("benign program %q statically flagged (risk %.3f)",
				r.Name, r.Static.RiskScore))
		}
	}
	for _, m := range reports {
		if !m.Miner {
			continue
		}
		for _, b := range reports {
			if !b.Miner && b.Static.RiskScore >= m.Static.RiskScore {
				out = append(out, fmt.Sprintf("ranking inversion: benign %q (%.3f) >= miner %q (%.3f)",
					b.Name, b.Static.RiskScore, m.Name, m.Static.RiskScore))
			}
		}
	}
	return out
}

// manifestText renders the golden score manifest: one tab-separated line
// per registry program pinning the scoring model's observable outputs.
// Builds are deterministic, so any drift is a model or program change.
func manifestText(reports []report) string {
	var b strings.Builder
	b.WriteString("# guestlint score manifest — generated by guestlint -all -manifest (make guestlint)\n")
	b.WriteString("# <name>\t<kind>\trisk=<score>\tpow=<loops>\tloops=<n>\t<verdict>\n")
	for _, r := range reports {
		kind, verdict := "benign", "clean"
		if r.Miner {
			kind = "miner"
		}
		if r.Static.Flagged() {
			verdict = "flagged"
		}
		fmt.Fprintf(&b, "%s\t%s\trisk=%.3f\tpow=%d\tloops=%d\t%s\n",
			r.Name, kind, r.Static.RiskScore, r.Static.PoWLoops, r.Static.Loops, verdict)
	}
	return b.String()
}
