// Command fleetload is the fleet-scale load generator: it boots an
// internal/fleet service, floods it with tenant workload submissions
// (benign rate-model apps, catalog ISA programs, and miners on a
// configurable fraction of machines), runs a span of simulated time, and
// reports the service-level numbers that matter at scale — sustained
// hosts per second, aggregate alert latency, per-worker busy fractions,
// and the scheduler's steal and fast-forward totals — in the benchjson
// schema so runs can be committed and diffed like benchmarks.
//
// Usage:
//
//	fleetload                                  # 1000 machines, auto shards
//	fleetload -machines 256 -duration 5s       # CI smoke size
//	fleetload -shards 4 -procs 6 -miner-every 4
//	fleetload -json fleetload.json             # benchjson records to a file
//
// The simulated process population is machines x (procs + miner threads
// on infected machines); -machines 250000 -procs 4 drives a million
// processes through one fleet.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"darkarts/internal/fleet"
	"darkarts/internal/workload"
)

// result mirrors cmd/benchjson's Result schema so fleetload output can be
// merged into BENCH_baseline.json.
type result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "fleetload:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("fleetload", flag.ContinueOnError)
	machines := fs.Int("machines", 1000, "simulated hosts in the fleet")
	shards := fs.Int("shards", 0, "worker shards (0 = GOMAXPROCS)")
	round := fs.Duration("round", 500*time.Millisecond, "simulated time per fleet round")
	dur := fs.Duration("duration", 10*time.Second, "simulated run time")
	procs := fs.Int("procs", 4, "benign processes per machine (apps + catalog programs)")
	minerEvery := fs.Int("miner-every", 8, "infect every Nth machine with a miner (0 = none)")
	throttle := fs.Float64("throttle", 0, "miner throttle fraction 0..1")
	ips := fs.Uint64("ips", 50_000, "instruction rate of each catalog ISA program")
	period := fs.Duration("period", 10*time.Second, "per-machine monitoring window (threshold scales with it)")
	seed := fs.Int64("seed", 1, "fleet workload seed")
	jsonOut := fs.String("json", "", "write benchjson-schema records here (default: print to stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	cfg := fleet.DefaultConfig(*machines)
	cfg.Shards = *shards
	cfg.Round = *round
	cfg.Seed = *seed
	cfg.Machine.Kernel.Tunables.Period = *period
	f, err := fleet.New(cfg)
	if err != nil {
		return err
	}
	eff := f.Config()
	fmt.Printf("fleet: %d machines, %d shards, %s rounds\n", eff.Machines, eff.Shards, eff.Round)

	// Submission schedule: deterministic in (machines, procs, miner-every,
	// seed). Apps dominate; every 4th benign slot is a catalog ISA program
	// so the shared decoded-block cache sees real decode traffic.
	apps := workload.TableIIApps()
	catalog := f.Catalog()
	tasks := 0
	for i := 0; i < *machines; i++ {
		for p := 0; p < *procs; p++ {
			spec := fleet.WorkloadSpec{Tenant: tenantFor(i), Machine: i, Pin: true}
			if p%4 == 3 {
				spec.Kind = fleet.KindProgram
				spec.Program = catalog[(i+p)%len(catalog)]
				spec.IPS = *ips
			} else {
				spec.Kind = fleet.KindApp
				spec.App = apps[(i*7+p)%len(apps)].Name
			}
			pl, err := f.Submit(spec)
			if err != nil {
				return err
			}
			tasks += len(pl.Tgids)
		}
		if *minerEvery > 0 && i%*minerEvery == 0 {
			pl, err := f.Submit(fleet.WorkloadSpec{
				Tenant: "attacker", Kind: fleet.KindMiner,
				Throttle: *throttle, Machine: i, Pin: true,
			})
			if err != nil {
				return err
			}
			tasks += len(pl.Tgids)
		}
	}
	fmt.Printf("placed %d processes across %d tenants\n", tasks, len(tenantSet(*machines))+1)

	t0 := time.Now()
	f.Run(*dur)
	wall := time.Since(t0)

	recs := report(f, wall, tasks)
	buf, err := json.MarshalIndent(recs, "", "  ")
	if err != nil {
		return err
	}
	buf = append(buf, '\n')
	if *jsonOut != "" {
		if err := os.WriteFile(*jsonOut, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("benchjson records written to %s\n", *jsonOut)
	} else {
		os.Stdout.Write(buf)
	}
	return nil
}

// tenantFor maps machines onto a small stable tenant population.
func tenantFor(machine int) string {
	return fmt.Sprintf("tenant-%d", machine%16)
}

// tenantSet returns the distinct benign tenants for n machines.
func tenantSet(n int) map[string]bool {
	s := map[string]bool{}
	for i := 0; i < n; i++ {
		s[tenantFor(i)] = true
	}
	return s
}

// report distills the fleet registry into the load summary: hosts/sec,
// aggregate alert latency, per-worker busy fractions (workers, not home
// batches: a worker's busy time includes the machines it stole, so these
// fractions describe where host CPU actually went), and steal /
// fast-forward totals.
func report(f *fleet.Fleet, wall time.Duration, tasks int) []result {
	eff := f.Config()
	simSec := f.Now().Seconds()
	wallSec := wall.Seconds()
	m := map[string]float64{
		"machines":         float64(eff.Machines),
		"shards":           float64(eff.Shards),
		"processes":        float64(tasks),
		"sim_seconds":      simSec,
		"wall_seconds":     wallSec,
		"hosts_per_second": float64(eff.Machines) * simSec / wallSec,
	}
	var alerts float64
	snapshot := f.Obs().Snapshot()
	busy := map[string]float64{}
	idle := map[string]float64{}
	for _, mt := range snapshot {
		switch mt.Name {
		case "fleet_alerts_total":
			alerts = float64(mt.Value)
			m["alerts_total"] = alerts
		case "fleet_alert_latency_ms":
			if mt.Value > 0 {
				m["alert_latency_ms_avg"] = float64(mt.Sum) / float64(mt.Value)
			}
		case "fleet_bbcache_shared_hits_total":
			m["bbcache_shared_hits"] = float64(mt.Value)
		case "fleet_steals_total":
			m["steal_total"] = float64(mt.Value)
		case "fleet_fastforward_rounds_total":
			m["fastforward_rounds_total"] = float64(mt.Value)
		case "fleet_worker_busy_ns_total":
			busy[mt.Label] = float64(mt.Value)
		case "fleet_worker_idle_ns_total":
			idle[mt.Label] = float64(mt.Value)
		}
	}
	minFrac, maxFrac, sumFrac := 1.0, 0.0, 0.0
	for label, b := range busy {
		frac := 0.0
		if tot := b + idle[label]; tot > 0 {
			frac = b / tot
		}
		m["busy_frac_"+workerSuffix(label)] = frac
		if frac < minFrac {
			minFrac = frac
		}
		if frac > maxFrac {
			maxFrac = frac
		}
		sumFrac += frac
	}
	if len(busy) > 0 {
		m["worker_busy_frac_min"] = minFrac
		m["worker_busy_frac_max"] = maxFrac
		m["worker_busy_frac_avg"] = sumFrac / float64(len(busy))
	}
	fmt.Printf("ran %.0fs simulated in %.2fs wall: %.0f host-seconds/second, %0.f alerts",
		simSec, wallSec, m["hosts_per_second"], alerts)
	if v, ok := m["alert_latency_ms_avg"]; ok {
		fmt.Printf(", %.0fms avg alert latency", v)
	}
	fmt.Println()
	return []result{{
		Name:       "FleetLoad",
		Iterations: int64(f.Rounds()),
		NsPerOp:    float64(wall.Nanoseconds()) / float64(f.Rounds()),
		Metrics:    m,
	}}
}

// workerSuffix turns the metric label `worker="3"` into "worker3".
func workerSuffix(label string) string {
	v := strings.TrimSuffix(strings.TrimPrefix(label, `worker="`), `"`)
	return "worker" + v
}
