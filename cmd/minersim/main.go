// Command minersim exercises the mining substrate end-to-end: it starts the
// TCP pool over a fresh blockchain, connects a miner client, sweeps nonces
// against pool jobs, submits shares, and reports the hash rate, share
// statistics and estimated profitability.
//
// Usage:
//
//	minersim -pow sha256d -rounds 6
//	minersim -pow cryptonight -rounds 2         # slower, memory-hard
//	minersim -isa                               # mine on the simulated CPU
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"darkarts/internal/cpu"
	"darkarts/internal/miner"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "minersim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("minersim", flag.ContinueOnError)
	powName := fs.String("pow", "sha256d", "proof of work: sha256d, cryptonight, equihash")
	rounds := fs.Int("rounds", 4, "jobs to mine")
	budget := fs.Uint64("budget", 1<<18, "nonce attempts per job")
	isaMode := fs.Bool("isa", false, "run one mining round on the simulated CPU and report its RSX signature")
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *isaMode {
		return runISA()
	}

	var pow miner.PoW
	switch *powName {
	case "sha256d":
		pow = miner.SHA256d{}
	case "cryptonight":
		pow = &miner.CryptoNightLite{ScratchKB: 16, Iterations: 512}
	case "equihash":
		pow = miner.DefaultEquihash()
	default:
		return fmt.Errorf("unknown pow %q", *powName)
	}

	pool := miner.NewPool(pow, 1<<57, 1<<59)
	addr, err := pool.Serve()
	if err != nil {
		return err
	}
	defer pool.Close()
	fmt.Printf("pool %s listening on %s\n", pow.Name(), addr)

	client, err := miner.DialPool(addr)
	if err != nil {
		return err
	}
	defer client.Close()

	start := time.Now()
	var attempts uint64
	for r := 0; r < *rounds; r++ {
		job, err := client.GetJob()
		if err != nil {
			return err
		}
		nonce, found := miner.Mine(pow, job.Header, 0, *budget)
		attempts += *budget
		if !found {
			fmt.Printf("job %d: budget exhausted\n", job.ID)
			continue
		}
		ok, err := client.Submit(job.ID, nonce)
		if err != nil {
			return err
		}
		fmt.Printf("job %d: nonce %d share accepted=%v\n", job.ID, nonce, ok)
	}
	elapsed := time.Since(start)
	stats := pool.Stats()
	fmt.Printf("chain height %d, shares accepted %d rejected %d, blocks %d\n",
		pool.Chain().Height(), stats.SharesAccepted, stats.SharesRejected, stats.BlocksFound)
	fmt.Printf("host-side hash rate: %.0f H/s over %v\n",
		float64(attempts)/elapsed.Seconds(), elapsed.Round(time.Millisecond))
	if err := pool.Chain().Verify(); err != nil {
		return fmt.Errorf("chain verification: %w", err)
	}
	fmt.Println("chain verified")
	p := miner.EstimateProfit(1.0)
	fmt.Printf("full-speed attacker economics: %.3f XMR/h ($%.2f/h)\n", p.XMRPerHour, p.USDPerHour)
	return nil
}

// runISA mines on the simulated processor and prints the instruction
// signature the defense would see.
func runISA() error {
	header := miner.Header{Height: 1, Time: 42, Target: 0}.Marshal()
	key := []byte("0123456789abcdef")
	prog, lay := miner.BuildISAMinerProgram(header, key, 1<<59, 0, 256)

	cfg := cpu.DefaultConfig()
	cfg.Cores = 1
	cfg.Characterize = true
	machine, err := cpu.New(cfg)
	if err != nil {
		return err
	}
	const base = 0x400_0000
	ctx, err := cpu.NewContext(prog, machine.Memory(), base)
	if err != nil {
		return err
	}
	machine.Core(0).LoadContext(ctx)
	for !ctx.Halted {
		machine.Core(0).Run(100_000_000)
	}
	if ctx.Fault != nil {
		return ctx.Fault
	}
	mem := machine.Memory()
	bank := machine.Core(0).Counters()
	fmt.Printf("ISA miner: found=%d nonce=%d\n",
		mem.Read(base+uint64(lay.Found), 8), mem.Read(base+uint64(lay.FoundNonce), 8))
	fmt.Printf("retired %d instructions, RSX %d (%.1f%%)\n",
		bank.Retired(), bank.RSX(), 100*float64(bank.RSX())/float64(bank.Retired()))
	return nil
}
