package main

import "testing"

func TestRunSHA256dPool(t *testing.T) {
	if err := run([]string{"-pow", "sha256d", "-rounds", "3", "-budget", "131072"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunEquihashPool(t *testing.T) {
	if err := run([]string{"-pow", "equihash", "-rounds", "2", "-budget", "65536"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunISAMode(t *testing.T) {
	if err := run([]string{"-isa"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownPow(t *testing.T) {
	if err := run([]string{"-pow", "scrypt"}); err == nil {
		t.Error("unknown pow accepted")
	}
}
