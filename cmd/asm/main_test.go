package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const testProg = `
.name rotator
    MOVI r1, 0x1234
loop:
    ROLI r1, r1, 7
    XORI r1, r1, 0x55
    ADDI r2, r2, 1
    CMPI r2, 100
    JNE  loop
    HALT
`

func writeTemp(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "p.s")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestAsmRunsProgram(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{writeTemp(t, testProg)}, nil, &out); err != nil {
		t.Fatal(err)
	}
	s := out.String()
	if !strings.Contains(s, "rotator") || !strings.Contains(s, "RSX=200") {
		t.Errorf("output:\n%s", s)
	}
	if !strings.Contains(s, "rotate=100") {
		t.Errorf("rotate count missing:\n%s", s)
	}
}

func TestAsmStdin(t *testing.T) {
	var out bytes.Buffer
	in := strings.NewReader("MOVI r5, 9\nHALT\n")
	if err := run([]string{"-"}, in, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "r5   = 9") {
		t.Errorf("output:\n%s", out.String())
	}
}

func TestAsmDisasm(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{"-disasm", writeTemp(t, testProg)}, nil, &out); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "ROLI r1, r1, 7") {
		t.Errorf("disasm:\n%s", out.String())
	}
}

func TestAsmErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run([]string{writeTemp(t, "FROB r1")}, nil, &out); err == nil {
		t.Error("bad program accepted")
	}
	if err := run([]string{"-tags", "bogus", writeTemp(t, "HALT")}, nil, &out); err == nil {
		t.Error("bad tag set accepted")
	}
	if err := run([]string{"/nonexistent/file.s"}, nil, &out); err == nil {
		t.Error("missing file accepted")
	}
	if err := run([]string{writeTemp(t, "MOVI r1, 1\nMOVI r2, 0\nDIV r1, r1, r2\nHALT")}, nil, &out); err == nil {
		t.Error("faulting program reported success")
	}
}

func TestAsmBudgetExhaustion(t *testing.T) {
	var out bytes.Buffer
	err := run([]string{"-budget", "500", writeTemp(t, "spin:\n JMP spin")}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "budget") {
		t.Errorf("no budget message:\n%s", out.String())
	}
}
