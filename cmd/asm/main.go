// Command asm assembles a program for the simulated processor and runs it,
// reporting the architectural result and the counter values the defense
// would have observed — the quickest way to see how any hand-written code
// scores against the RSX detector.
//
// Usage:
//
//	asm prog.s                 # assemble + run, print registers/counters
//	asm -tags rsxo prog.s
//	asm -disasm prog.s         # assemble then disassemble (round-trip)
//	echo 'MOVI r1, 2 ... ' | asm -
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"darkarts/internal/cpu"
	"darkarts/internal/isa"
	"darkarts/internal/microcode"
)

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "asm:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("asm", flag.ContinueOnError)
	tags := fs.String("tags", "rsx", "decoder tag set: rsx or rsxo")
	budget := fs.Uint64("budget", 100_000_000, "max instructions to execute")
	disasm := fs.Bool("disasm", false, "print the disassembly instead of running")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: asm [flags] <file.s|->")
	}

	var src []byte
	var err error
	if fs.Arg(0) == "-" {
		src, err = io.ReadAll(stdin)
	} else {
		src, err = os.ReadFile(fs.Arg(0))
	}
	if err != nil {
		return err
	}

	prog, err := isa.Assemble(string(src))
	if err != nil {
		return err
	}
	if *disasm {
		fmt.Fprint(stdout, isa.Disassemble(prog))
		return nil
	}

	cfg := cpu.DefaultConfig()
	cfg.Cores = 1
	cfg.Characterize = true
	machine, err := cpu.New(cfg)
	if err != nil {
		return err
	}
	switch *tags {
	case "rsx":
		machine.InstallTagTable(microcode.RSX())
	case "rsxo":
		machine.InstallTagTable(microcode.RSXO())
	default:
		return fmt.Errorf("unknown tag set %q", *tags)
	}

	const base = 0x100_0000
	ctx, err := cpu.NewContext(prog, machine.Memory(), base)
	if err != nil {
		return err
	}
	core := machine.Core(0)
	core.LoadContext(ctx)
	var executed uint64
	for executed < *budget && !ctx.Halted {
		ran := core.Run(*budget - executed)
		executed += ran
		if ran == 0 {
			break
		}
	}
	if ctx.Fault != nil {
		return fmt.Errorf("program faulted: %w", ctx.Fault)
	}
	if !ctx.Halted {
		fmt.Fprintf(stdout, "(budget of %d instructions exhausted before HALT)\n", *budget)
	}

	fmt.Fprintf(stdout, "program %q: %d instructions retired\n", prog.Name, executed)
	fmt.Fprint(stdout, "non-zero registers:\n")
	for r := 0; r < isa.NumRegs; r++ {
		if v := ctx.Regs[r]; v != 0 {
			fmt.Fprintf(stdout, "  %-4s = %d (%#x)\n", isa.Reg(r), v, v)
		}
	}
	bank := core.Counters()
	fmt.Fprintf(stdout, "defense counters (%s tags): RSX=%d (%.2f%% of retired)\n",
		*tags, bank.RSX(), 100*float64(bank.RSX())/float64(max64(executed, 1)))
	fmt.Fprintf(stdout, "  rotate=%d shift=%d xor=%d or=%d\n",
		bank.ClassCount(isa.ClassRotate), bank.ClassCount(isa.ClassShift),
		bank.ClassCount(isa.ClassXor), bank.ClassCount(isa.ClassOr))
	return nil
}

func max64(a, b uint64) uint64 {
	if a > b {
		return a
	}
	return b
}
