// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments -list
//	experiments -run fig5,fig10,table4
//	experiments -run all -scale 0.05 -window 4000000 -markdown
//
// -scale compresses the hour-long experiments (0.05 = 3 simulated minutes
// per workload, counts scaled back to the hour); -window sets the sampled
// instruction window for the per-1B characterizations.
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"

	"darkarts/internal/experiments"
	"darkarts/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	list := fs.Bool("list", false, "list experiment ids")
	runIDs := fs.String("run", "all", "comma-separated experiment ids, or 'all'")
	scale := fs.Float64("scale", 0.02, "hour-experiment compression (1.0 = full hour)")
	window := fs.Uint64("window", experiments.DefaultWindow, "instruction window for characterizations")
	markdown := fs.Bool("markdown", false, "emit GitHub markdown instead of plain tables")
	seed := fs.Int64("seed", 7, "dataset seed for the ML experiment")
	parallel := fs.Bool("parallel", false, "parallel quantum execution for hour-scale kernels (identical results, see DESIGN.md)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	experiments.Parallel = *parallel
	mode := "serial"
	if *parallel {
		mode = "parallel"
	}
	fmt.Fprintf(os.Stderr, "experiments: %s quantum execution\n", mode)

	type gen func() ([]experiments.Table, error)

	var charCache []workload.CharacterizationResult
	characterize := func() ([]workload.CharacterizationResult, error) {
		if charCache == nil {
			res, err := experiments.Characterization(*window)
			if err != nil {
				return nil, err
			}
			charCache = res
		}
		return charCache, nil
	}
	charTable := func(f func([]workload.CharacterizationResult) experiments.Table) gen {
		return func() ([]experiments.Table, error) {
			res, err := characterize()
			if err != nil {
				return nil, err
			}
			return []experiments.Table{f(res)}, nil
		}
	}

	var hourly map[string]experiments.Table
	hourlyTable := func(id string) gen {
		return func() ([]experiments.Table, error) {
			if hourly == nil {
				res, err := experiments.HourlyResults(experiments.HourScale(*scale))
				if err != nil {
					return nil, err
				}
				hourly = map[string]experiments.Table{
					"fig12":  experiments.Figure12(res),
					"fig13":  experiments.Figure13(res),
					"fig15":  experiments.Figure15(res),
					"fig16":  experiments.Figure16(res),
					"fig17":  experiments.Figure17(res),
					"table3": experiments.TableIII(res),
				}
			}
			return []experiments.Table{hourly[id]}, nil
		}
	}

	gens := map[string]gen{
		"fig1": func() ([]experiments.Table, error) { return []experiments.Table{experiments.Figure1()}, nil },
		"fig2": func() ([]experiments.Table, error) {
			return []experiments.Table{experiments.Figure2(experiments.HourScale(*scale))}, nil
		},
		"table1": func() ([]experiments.Table, error) { return []experiments.Table{experiments.TableI()}, nil },
		"table2": func() ([]experiments.Table, error) { return []experiments.Table{experiments.TableII()}, nil },
		"fig5":   charTable(experiments.Figure5),
		"fig6":   charTable(experiments.Figure6),
		"fig7":   charTable(experiments.Figure7),
		"fig8":   charTable(experiments.Figure8),
		"fig9":   charTable(experiments.Figure9),
		"fig10":  charTable(experiments.Figure10),
		"fig11":  charTable(experiments.Figure11),
		"fig12":  hourlyTable("fig12"),
		"fig13":  hourlyTable("fig13"),
		"fig15":  hourlyTable("fig15"),
		"fig16":  hourlyTable("fig16"),
		"fig17":  hourlyTable("fig17"),
		"table3": hourlyTable("table3"),
		"fig14": func() ([]experiments.Table, error) {
			tab, err := experiments.Figure14()
			return []experiments.Table{tab}, err
		},
		"threshold-sweep": func() ([]experiments.Table, error) {
			return []experiments.Table{experiments.ThresholdSweep()}, nil
		},
		"throttling": func() ([]experiments.Table, error) {
			tab, err := experiments.ThrottlingDetection()
			return []experiments.Table{tab}, err
		},
		"table4": func() ([]experiments.Table, error) { return []experiments.Table{experiments.TableIV()}, nil },
		"fig18": func() ([]experiments.Table, error) {
			_, tab, err := experiments.Figure18(*seed)
			return []experiments.Table{tab}, err
		},
		"overhead": func() ([]experiments.Table, error) {
			_, tab, err := experiments.Overhead(experiments.DefaultOverheadConfig())
			return []experiments.Table{tab}, err
		},
	}

	ids := make([]string, 0, len(gens))
	for id := range gens {
		ids = append(ids, id)
	}
	sort.Strings(ids)

	if *list {
		for _, id := range ids {
			fmt.Println(id)
		}
		return nil
	}

	selected := ids
	if *runIDs != "all" {
		selected = strings.Split(*runIDs, ",")
	}
	for _, id := range selected {
		id = strings.TrimSpace(id)
		g, ok := gens[id]
		if !ok {
			return fmt.Errorf("unknown experiment %q (use -list)", id)
		}
		tabs, err := g()
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		for _, tab := range tabs {
			if *markdown {
				fmt.Print(tab.Markdown())
			} else {
				fmt.Println(tab.String())
			}
		}
	}
	return nil
}
