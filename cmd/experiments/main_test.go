package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSelectedExperiments(t *testing.T) {
	err := run([]string{"-run", "table1,table2,table4,fig1,threshold-sweep", "-scale", "0.01"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunMarkdown(t *testing.T) {
	if err := run([]string{"-run", "table4", "-markdown"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-run", "fig99"}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestRunCharacterizationFigure(t *testing.T) {
	if err := run([]string{"-run", "fig5", "-window", "400000"}); err != nil {
		t.Fatal(err)
	}
}
