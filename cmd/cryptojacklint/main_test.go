package main_test

import (
	"bytes"
	"os"
	"os/exec"
	"path/filepath"
	"testing"
)

// buildLint compiles the cryptojacklint binary into a temp dir once per
// test that needs it.
func buildLint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "cryptojacklint")
	out, err := exec.Command("go", "build", "-o", bin, ".").CombinedOutput()
	if err != nil {
		t.Fatalf("building cryptojacklint: %v\n%s", err, out)
	}
	return bin
}

// TestVictimFixture runs the built binary against the seeded-violation
// fixture and golden-diffs the diagnostics and exit code: one finding per
// analyzer, the //lint:ignore site absent, exit status 1.
func TestVictimFixture(t *testing.T) {
	bin := buildLint(t)
	cmd := exec.Command(bin, "-sim-pkgs=victim", "-ctrange-pkgs=victim", "testdata/src/victim")
	var stdout, stderr bytes.Buffer
	cmd.Stdout, cmd.Stderr = &stdout, &stderr

	err := cmd.Run()
	exit, ok := err.(*exec.ExitError)
	if !ok {
		t.Fatalf("want exit status 1, got err=%v\nstderr:\n%s", err, stderr.String())
	}
	if code := exit.ExitCode(); code != 1 {
		t.Fatalf("want exit status 1, got %d\nstderr:\n%s", code, stderr.String())
	}

	want, err := os.ReadFile(filepath.Join("testdata", "victim.golden"))
	if err != nil {
		t.Fatalf("reading golden: %v", err)
	}
	if got := stdout.String(); got != string(want) {
		t.Errorf("diagnostics differ from testdata/victim.golden\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestAnnotatedTreeClean is the acceptance gate in test form: the whole
// annotated module must lint clean with all eleven analyzers, and the
// state manifest statecheck derives from the walk must match the copy
// committed at internal/machine/state_manifest.txt.
func TestAnnotatedTreeClean(t *testing.T) {
	if testing.Short() {
		t.Skip("whole-module lint is a few seconds; skipped in -short")
	}
	bin := buildLint(t)
	root, err := filepath.Abs(filepath.Join("..", ".."))
	if err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(t.TempDir(), "state_manifest.txt")
	cmd := exec.Command(bin, "-state-manifest", manifest, "./...")
	cmd.Dir = root
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("cryptojacklint ./... failed: %v\n%s", err, out)
	}
	got, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatalf("reading generated manifest: %v", err)
	}
	want, err := os.ReadFile(filepath.Join(root, "internal", "machine", "state_manifest.txt"))
	if err != nil {
		t.Fatalf("reading committed manifest: %v", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("state manifest drifted from internal/machine/state_manifest.txt; regenerate it with\n\tgo run ./cmd/cryptojacklint -state-manifest internal/machine/state_manifest.txt ./...\n--- got ---\n%s--- want ---\n%s", got, want)
	}
}

// TestListFlag checks -list names every analyzer exactly once.
func TestListFlag(t *testing.T) {
	bin := buildLint(t)
	out, err := exec.Command(bin, "-list").CombinedOutput()
	if err != nil {
		t.Fatalf("cryptojacklint -list: %v\n%s", err, out)
	}
	for _, name := range []string{
		"determinism", "lockcheck", "locksetflow", "lockorder",
		"atomiccheck", "hotpath", "exhaustivedecode", "ctrange",
		"hosttaint", "statecheck", "sharecheck",
	} {
		if !bytes.Contains(out, []byte(name)) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}
