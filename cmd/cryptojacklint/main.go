// Command cryptojacklint is the reproduction's invariant linter: it runs
// the internal/analysis suite (determinism, lockcheck, locksetflow,
// lockorder, atomiccheck, hotpath, exhaustivedecode, ctrange, hosttaint,
// statecheck, sharecheck) over the module and reports every violation of
// the simulator's machine-checked conventions. All analyzers share one
// type-checked load of the module; the module-wide analyzers
// additionally share one call graph and one taint fixpoint. `make lint`
// wires it into the tier-1 gate; DESIGN.md §5d/§5g catalogue the
// analyzers and their annotation syntax.
//
// Usage:
//
//	cryptojacklint [-only names] [-sim-pkgs substrings]
//	               [-ctrange-pkgs substrings] [-state-manifest file]
//	               [-budget duration] [-time] [-list] [patterns]
//
// Patterns default to ./... (the whole module). Exit status is 1 when any
// finding is reported or the -budget wall-clock ceiling is exceeded, 2 on
// load or usage errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"darkarts/internal/analysis"
	"darkarts/internal/analysis/atomiccheck"
	"darkarts/internal/analysis/ctrange"
	"darkarts/internal/analysis/determinism"
	"darkarts/internal/analysis/exhaustivedecode"
	"darkarts/internal/analysis/hosttaint"
	"darkarts/internal/analysis/hotpath"
	"darkarts/internal/analysis/lockcheck"
	"darkarts/internal/analysis/lockorder"
	"darkarts/internal/analysis/locksetflow"
	"darkarts/internal/analysis/sharecheck"
	"darkarts/internal/analysis/statecheck"
)

// simPackagesDefault scopes the determinism, hosttaint, statecheck, and
// sharecheck analyzers to the simulation packages — the single shared
// list in analysis.SimPackages: the packages whose state feeds the RSX
// counter pipeline, the machine and fleet layers whose round barriers
// extend the serial/parallel bit-identity guarantee to whole fleets
// (FLEET.md), and the isa/microcode layers whose tables are part of the
// decoded-program surface. Wall-clock or map-order nondeterminism
// elsewhere (CLI rendering, experiments) cannot break either guarantee.
var simPackagesDefault = analysis.SimScopeDefault()

// ctrangePackagesDefault scopes the value-range analyzer to the packages
// doing counter arithmetic; range reasoning about CLI or experiment code
// would only produce noise.
const ctrangePackagesDefault = "internal/counters,internal/kernel"

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr *os.File) int {
	fs := flag.NewFlagSet("cryptojacklint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		only    = fs.String("only", "", "comma-separated analyzer names to run (default: all)")
		simPkgs = fs.String("sim-pkgs", simPackagesDefault,
			"comma-separated package-path substrings the determinism analyzer is scoped to")
		ctrangePkgs = fs.String("ctrange-pkgs", ctrangePackagesDefault,
			"comma-separated package-path substrings the ctrange analyzer is scoped to")
		manifest = fs.String("state-manifest", "",
			"write the statecheck state inventory to this file after the run")
		budget = fs.Duration("budget", 0,
			"fail when the whole run (load + analyzers) exceeds this wall-clock ceiling")
		timing = fs.Bool("time", false, "report per-analyzer wall time on stderr")
		list   = fs.Bool("list", false, "list analyzers and exit")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}

	all := []*analysis.Analyzer{
		determinism.Analyzer,
		lockcheck.Analyzer,
		locksetflow.Analyzer,
		lockorder.Analyzer,
		atomiccheck.Analyzer,
		hotpath.Analyzer,
		exhaustivedecode.Analyzer,
		ctrange.Analyzer,
		hosttaint.Analyzer,
		statecheck.Analyzer,
		sharecheck.Analyzer,
	}
	if *list {
		for _, a := range all {
			fmt.Fprintf(stdout, "%-17s %s\n", a.Name, a.Doc)
		}
		return 0
	}

	analyzers := all
	if *only != "" {
		byName := map[string]*analysis.Analyzer{}
		for _, a := range all {
			byName[a.Name] = a
		}
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a, ok := byName[strings.TrimSpace(name)]
			if !ok {
				fmt.Fprintf(stderr, "cryptojacklint: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}

	// The module-wide taint/state analyzers bypass the per-package filter
	// below; their scope is plumbed through package variables instead.
	simScope := strings.Split(*simPkgs, ",")
	hosttaint.Scope = simScope
	statecheck.Scope = simScope
	sharecheck.Scope = simScope

	started := time.Now()

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "cryptojacklint: %v\n", err)
		return 2
	}
	root, err := moduleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "cryptojacklint: cannot find go.mod above %s\n", cwd)
		return 2
	}

	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	// Resolve directory patterns against the invocation directory, not the
	// module root, so `cryptojacklint ./internal/cpu` works from anywhere.
	for i, p := range patterns {
		if strings.HasSuffix(p, "...") || filepath.IsAbs(p) {
			continue
		}
		patterns[i] = filepath.Join(cwd, p)
	}

	loader, err := analysis.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "cryptojacklint: %v\n", err)
		return 2
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "cryptojacklint: %v\n", err)
		return 2
	}

	// Package-scoped analyzers: everything else runs everywhere.
	scopes := map[string][]string{
		determinism.Analyzer.Name: strings.Split(*simPkgs, ","),
		ctrange.Analyzer.Name:     strings.Split(*ctrangePkgs, ","),
	}
	filter := func(a *analysis.Analyzer, pkgPath string) bool {
		scope, scoped := scopes[a.Name]
		if !scoped {
			return true
		}
		for _, s := range scope {
			if s = strings.TrimSpace(s); s != "" && strings.Contains(pkgPath, s) {
				return true
			}
		}
		return false
	}

	findings, timings, err := analysis.RunTimed(pkgs, analyzers, loader.Dirs, filter)
	if err != nil {
		fmt.Fprintf(stderr, "cryptojacklint: %v\n", err)
		return 2
	}

	// Suppression audit: malformed //lint:ignore comments are always
	// findings; unused ones only when the full analyzer set ran (a -only
	// run legitimately leaves other analyzers' suppressions idle).
	findings = append(findings, analysis.SuppressionFindings(loader.Dirs, *only == "")...)
	analysis.SortFindings(findings)

	elapsed := time.Since(started)
	if *timing {
		for _, tm := range timings {
			fmt.Fprintf(stderr, "cryptojacklint: %-17s %s\n", tm.Analyzer, tm.Elapsed.Round(10*time.Microsecond))
		}
		fmt.Fprintf(stderr, "cryptojacklint: %-17s %s\n", "total", elapsed.Round(10*time.Microsecond))
	}

	if *manifest != "" && ranAnalyzer(analyzers, statecheck.Analyzer) {
		if err := os.WriteFile(*manifest, []byte(statecheck.LastManifest), 0o644); err != nil {
			fmt.Fprintf(stderr, "cryptojacklint: writing state manifest: %v\n", err)
			return 2
		}
	}
	for _, f := range findings {
		name := f.Pos.Filename
		if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
			name = rel
		}
		fmt.Fprintf(stdout, "%s:%d:%d: %s (%s)\n", name, f.Pos.Line, f.Pos.Column, f.Message, f.Analyzer)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "cryptojacklint: %d finding(s)\n", len(findings))
		return 1
	}
	if *budget > 0 && elapsed > *budget {
		fmt.Fprintf(stderr, "cryptojacklint: run took %s, over the %s budget\n",
			elapsed.Round(time.Millisecond), *budget)
		return 1
	}
	return 0
}

func ranAnalyzer(analyzers []*analysis.Analyzer, a *analysis.Analyzer) bool {
	for _, x := range analyzers {
		if x == a {
			return true
		}
	}
	return false
}

// moduleRoot walks up from dir to the enclosing go.mod.
func moduleRoot(dir string) (string, error) {
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", os.ErrNotExist
		}
		dir = parent
	}
}
