// Package victim is the cryptojacklint end-to-end fixture: a package with
// one seeded violation per analyzer (plus one suppressed site), used by
// the cmd test to golden-diff the binary's diagnostics and exit code.
package victim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

type miner struct {
	mu     sync.Mutex
	shares uint64 // guarded by mu
	hashes uint64
}

// Stamp seeds a determinism violation: wall-clock time in simulation state.
func (m *miner) Stamp() int64 {
	return time.Now().UnixNano()
}

// Shares seeds a lockcheck violation: a guarded read without the lock.
func (m *miner) Shares() uint64 {
	return m.shares
}

// AddShare holds the lock correctly.
func (m *miner) AddShare() {
	m.mu.Lock()
	m.shares++
	m.mu.Unlock()
}

// AddHash uses the atomic API for hashes...
func (m *miner) AddHash() {
	atomic.AddUint64(&m.hashes, 1)
}

// Hashes seeds an atomiccheck violation: ...but reads it plainly here.
func (m *miner) Hashes() uint64 {
	return m.hashes
}

// HashesSettled is the suppressed counterpart: the binary must honour
// //lint:ignore and report nothing for this line.
func (m *miner) HashesSettled() uint64 {
	//lint:ignore atomiccheck read happens after the worker pool has drained
	return m.hashes
}

// step seeds a hotpath violation: a formatting call on the hot loop.
//
//cryptojack:hotpath
func (m *miner) step(n uint64) string {
	return fmt.Sprintf("step-%d", n)
}
