// Package victim is the cryptojacklint end-to-end fixture: a package with
// one seeded violation per analyzer (plus one suppressed site), used by
// the cmd test to golden-diff the binary's diagnostics and exit code.
package victim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

type miner struct {
	mu     sync.Mutex
	shares uint64 // guarded by mu
	hashes uint64
}

// Stamp seeds a determinism violation: wall-clock time in simulation state.
func (m *miner) Stamp() int64 {
	return time.Now().UnixNano()
}

// Shares seeds a lockcheck violation: a guarded read without the lock.
func (m *miner) Shares() uint64 {
	return m.shares
}

// AddShare holds the lock correctly.
func (m *miner) AddShare() {
	m.mu.Lock()
	m.shares++
	m.mu.Unlock()
}

// AddHash uses the atomic API for hashes...
func (m *miner) AddHash() {
	atomic.AddUint64(&m.hashes, 1)
}

// Hashes seeds an atomiccheck violation: ...but reads it plainly here.
func (m *miner) Hashes() uint64 {
	return m.hashes
}

// HashesSettled is the suppressed counterpart: the binary must honour
// //lint:ignore and report nothing for this line.
func (m *miner) HashesSettled() uint64 {
	//lint:ignore atomiccheck read happens after the worker pool has drained
	return m.hashes
}

// step seeds a hotpath violation: a formatting call on the hot loop.
//
//cryptojack:hotpath
func (m *miner) step(n uint64) string {
	return fmt.Sprintf("step-%d", n)
}

type vault struct {
	mu    sync.Mutex
	coins uint64 // guarded by mu
}

// Coins seeds a locksetflow violation the lexical lockcheck cannot see:
// the lock is taken on one branch only, so it is not held on every path
// to the access, but a source-order scan sees the Lock call first and
// stays quiet.
func (v *vault) Coins(audit bool) uint64 {
	if audit {
		v.mu.Lock()
		defer v.mu.Unlock()
	}
	return v.coins
}

type ledger struct {
	mu sync.Mutex
	n  uint64
}

type journal struct {
	mu sync.Mutex
	n  uint64
}

var led ledger
var jrn journal

// Post seeds one leg of a lockorder cycle: ledger.mu → journal.mu...
func Post() {
	led.mu.Lock()
	defer led.mu.Unlock()
	jrn.mu.Lock()
	jrn.n++
	jrn.mu.Unlock()
}

// Reconcile seeds the other leg: journal.mu → ledger.mu. Two goroutines
// running Post and Reconcile concurrently can deadlock.
func Reconcile() {
	jrn.mu.Lock()
	defer jrn.mu.Unlock()
	led.mu.Lock()
	led.n++
	led.mu.Unlock()
}

type stage uint8

const (
	stageFetch stage = iota
	stageDecode
	stageExecute
)

// Advance seeds an exhaustivedecode violation: the switch handles two of
// the three pipeline stages and has no default.
func Advance(s stage) stage {
	switch s {
	case stageFetch:
		return stageDecode
	case stageDecode:
		return stageExecute
	}
	return stageFetch
}

// Throttle seeds a ctrange violation: a 32-bit accumulator fed full-range
// 32-bit samples wraps long before the monitoring window closes.
func Throttle(samples []uint32) uint32 {
	var acc uint32
	for _, s := range samples {
		acc += s
	}
	return acc
}

// growBlock seeds a hotpath allocation violation in the style of a
// basic-block cache bug: appending decoded ops inside the dispatch loop
// instead of building the block on the coldpath miss.
//
//cryptojack:hotpath
func growBlock(block []stage, s stage) []stage {
	return append(block, s)
}
