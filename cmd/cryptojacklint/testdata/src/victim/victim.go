// Package victim is the cryptojacklint end-to-end fixture: a package with
// one seeded violation per analyzer (plus one suppressed site), used by
// the cmd test to golden-diff the binary's diagnostics and exit code.
package victim

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

type miner struct {
	mu     sync.Mutex
	shares uint64 // guarded by mu
	hashes uint64
}

// Stamp seeds a determinism violation: wall-clock time in simulation state.
func (m *miner) Stamp() int64 {
	return time.Now().UnixNano()
}

// Shares seeds a lockcheck violation: a guarded read without the lock.
func (m *miner) Shares() uint64 {
	return m.shares
}

// AddShare holds the lock correctly.
func (m *miner) AddShare() {
	m.mu.Lock()
	m.shares++
	m.mu.Unlock()
}

// AddHash uses the atomic API for hashes...
func (m *miner) AddHash() {
	atomic.AddUint64(&m.hashes, 1)
}

// Hashes seeds an atomiccheck violation: ...but reads it plainly here.
func (m *miner) Hashes() uint64 {
	return m.hashes
}

// HashesSettled is the suppressed counterpart: the binary must honour
// //lint:ignore and report nothing for this line.
func (m *miner) HashesSettled() uint64 {
	//lint:ignore atomiccheck read happens after the worker pool has drained
	return m.hashes
}

// step seeds a hotpath violation: a formatting call on the hot loop.
//
//cryptojack:hotpath
func (m *miner) step(n uint64) string {
	return fmt.Sprintf("step-%d", n)
}

type vault struct {
	mu    sync.Mutex
	coins uint64 // guarded by mu
}

// Coins seeds a locksetflow violation the lexical lockcheck cannot see:
// the lock is taken on one branch only, so it is not held on every path
// to the access, but a source-order scan sees the Lock call first and
// stays quiet.
func (v *vault) Coins(audit bool) uint64 {
	if audit {
		v.mu.Lock()
		defer v.mu.Unlock()
	}
	return v.coins
}

type ledger struct {
	mu sync.Mutex
	n  uint64
}

type journal struct {
	mu sync.Mutex
	n  uint64
}

//cryptojack:state
var led ledger

//cryptojack:state
var jrn journal

// Post seeds one leg of a lockorder cycle: ledger.mu → journal.mu...
func Post() {
	led.mu.Lock()
	defer led.mu.Unlock()
	jrn.mu.Lock()
	jrn.n++
	jrn.mu.Unlock()
}

// Reconcile seeds the other leg: journal.mu → ledger.mu. Two goroutines
// running Post and Reconcile concurrently can deadlock.
func Reconcile() {
	jrn.mu.Lock()
	defer jrn.mu.Unlock()
	led.mu.Lock()
	led.n++
	led.mu.Unlock()
}

type stage uint8

const (
	stageFetch stage = iota
	stageDecode
	stageExecute
)

// Advance seeds an exhaustivedecode violation: the switch handles two of
// the three pipeline stages and has no default.
func Advance(s stage) stage {
	switch s {
	case stageFetch:
		return stageDecode
	case stageDecode:
		return stageExecute
	}
	return stageFetch
}

// Throttle seeds a ctrange violation: a 32-bit accumulator fed full-range
// 32-bit samples wraps long before the monitoring window closes.
func Throttle(samples []uint32) uint32 {
	var acc uint32
	for _, s := range samples {
		acc += s
	}
	return acc
}

// growBlock seeds a hotpath allocation violation in the style of a
// basic-block cache bug: appending decoded ops inside the dispatch loop
// instead of building the block on the coldpath miss.
//
//cryptojack:hotpath
func growBlock(block []stage, s stage) []stage {
	return append(block, s)
}

// Machine roots the statecheck walk and the sharecheck loop analysis
// (the cmd test narrows -sim-pkgs to this package). The heat field seeds
// a statecheck violation: it is reachable from machine state but carries
// no classification.
type Machine struct {
	rig   *rig  // cryptojack:state
	stamp int64 // cryptojack:state
	heat  uint64
}

// rig is the mutable structure the sharecheck seed aliases fleet-wide.
type rig struct {
	temp uint64 // cryptojack:state
}

// sharedRig is the loop-invariant pointer every machine below receives.
//
//cryptojack:state
var sharedRig = &rig{}

// install stores the package-level rig into one machine.
func install(m *Machine) {
	m.rig = sharedRig
}

// Fleet seeds a sharecheck violation: every machine visited by the loop
// ends up aliasing sharedRig, and victim.rig is not on the whitelist.
func Fleet(ms []*Machine) {
	for _, m := range ms {
		install(m)
	}
}

// clock launders the wall clock through a return value. The lexical
// determinism finding here is suppressed so the interprocedural
// hosttaint flow is reported once, at the store in Mark.
func clock() int64 {
	//lint:ignore determinism seeded hosttaint flow, reported at the store site instead
	return time.Now().UnixNano()
}

// Mark seeds a hosttaint violation: the laundered clock value lands in
// simulation state two calls away from the time.Now source.
func Mark(m *Machine) {
	m.stamp = clock()
}

// Settle seeds the suppression audit's unused leg: there is no hotpath
// diagnostic on the return line, so the comment itself is the finding.
func Settle() uint64 {
	//lint:ignore hotpath nothing fires here; the audit must flag this comment
	return 0
}

// Drain seeds the suppression audit's malformed leg: an analyzer list
// with no justification.
func Drain() uint64 {
	//lint:ignore atomiccheck
	return 0
}

// RankLoops seeds the determinism violation guest static analysis is in
// lint scope to catch: ranking loop scores by ranging over a map appends
// in encounter order, so the profile's hot-loop list differs across runs.
// (internal/gsa collects into a slice and sorts; this is the bug shape.)
func RankLoops(scores map[int]float64) []int {
	var ranked []int
	for pc, s := range scores {
		if s >= 1 {
			ranked = append(ranked, pc)
		}
	}
	return ranked
}

// coordinator mirrors the fleet round loop's shape: simTime is the
// barrier-owned simulation clock, advanced only while mu is held.
type coordinator struct {
	mu      sync.Mutex
	simTime int64 // guarded by mu
}

// Advance seeds the outside-the-barrier mutation the fleet's collect
// discipline forbids: the simulation clock moves without the
// coordinator's lock, so an API reader can observe a torn round.
func (c *coordinator) Advance(round int64) {
	c.simTime += round
}

// Barrier is the correct counterpart: the clock only moves under mu.
func (c *coordinator) Barrier(round int64) int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.simTime += round
	return c.simTime
}
