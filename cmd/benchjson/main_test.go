package main

import (
	"os"
	"path/filepath"
	"regexp"
	"testing"
)

func TestParseLine(t *testing.T) {
	r, ok := parseLine("BenchmarkFastEngineMIPS-8   	       3	 403331325 ns/op	        52.61 MIPS")
	if !ok {
		t.Fatal("line rejected")
	}
	if r.Name != "BenchmarkFastEngineMIPS" || r.Iterations != 3 {
		t.Errorf("parsed %+v", r)
	}
	if r.NsPerOp != 403331325 || r.Metrics["MIPS"] != 52.61 {
		t.Errorf("parsed %+v", r)
	}
	if _, ok := parseLine("goos: linux"); ok {
		t.Error("non-benchmark line accepted")
	}
}

func TestParseLineKeepCPU(t *testing.T) {
	keepCPURe = regexp.MustCompile("FleetScaling")
	defer func() { keepCPURe = nil }()
	r, ok := parseLine("BenchmarkFleetScaling/Mixed256-4   	      16	  52462322 ns/op	      4879 hosts/s")
	if !ok {
		t.Fatal("line rejected")
	}
	if r.Name != "BenchmarkFleetScaling/Mixed256-4" {
		t.Errorf("-cpu sweep suffix stripped: %q", r.Name)
	}
	if r.Metrics["hosts/s"] != 4879 {
		t.Errorf("parsed %+v", r)
	}
	r, ok = parseLine("BenchmarkFastEngineMIPS-8   	       3	 403331325 ns/op	        52.61 MIPS")
	if !ok {
		t.Fatal("line rejected")
	}
	if r.Name != "BenchmarkFastEngineMIPS" {
		t.Errorf("non-matching benchmark kept its suffix: %q", r.Name)
	}
}

func TestMergeFiles(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "obs.json")
	snapshot := `[
  {
    "name": "Obs/kernel",
    "iterations": 1,
    "metrics": {
      "sched_quanta_total": 15000
    }
  }
]
`
	if err := os.WriteFile(path, []byte(snapshot), 0o644); err != nil {
		t.Fatal(err)
	}
	records, err := mergeFiles([]string{path, " "})
	if err != nil {
		t.Fatal(err)
	}
	if len(records) != 1 || records[0].Name != "Obs/kernel" {
		t.Fatalf("merged %+v", records)
	}
	if records[0].Metrics["sched_quanta_total"] != 15000 {
		t.Errorf("metrics lost: %+v", records[0].Metrics)
	}
	if _, err := mergeFiles([]string{filepath.Join(dir, "missing.json")}); err == nil {
		t.Error("missing file accepted")
	}
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("not json"), 0o644)
	if _, err := mergeFiles([]string{bad}); err == nil {
		t.Error("malformed file accepted")
	}
}
