// Command benchjson converts `go test -bench` output on stdin into a JSON
// record, so benchmark baselines can be committed and diffed:
//
//	go test -run '^$' -bench MIPS . | go run ./cmd/benchjson -o BENCH_baseline.json
//
// Standard columns (iterations, ns/op, MB/s, B/op, allocs/op) and custom
// b.ReportMetric units (e.g. MIPS) are both captured; non-benchmark lines
// are passed through to stderr so failures stay visible.
//
// -merge appends records from existing JSON files in the same schema, so
// an observability snapshot (cryptojackd -metrics-json, or
// obs.Registry.BenchJSON) can ride along in the committed baseline:
//
//	go test -run '^$' -bench . ./... | go run ./cmd/benchjson -merge obs.json -o BENCH_baseline.json
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	merge := flag.String("merge", "", "comma-separated JSON files (same schema) whose records are appended")
	flag.Parse()

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *merge != "" {
		extra, err := mergeFiles(strings.Split(*merge, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		results = append(results, extra...)
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// mergeFiles loads Result records from each JSON file, in order.
func mergeFiles(paths []string) ([]Result, error) {
	var extra []Result
	for _, path := range paths {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("merge: %w", err)
		}
		var records []Result
		if err := json.Unmarshal(buf, &records); err != nil {
			return nil, fmt.Errorf("merge %s: %w", path, err)
		}
		extra = append(extra, records...)
	}
	return extra, nil
}

func parse(f *os.File) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		r, ok := parseLine(line)
		if !ok {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		results = append(results, r)
	}
	return results, sc.Err()
}

// parseLine parses "BenchmarkName-8  100  12345 ns/op  67.8 MIPS ...".
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix.
	if i := strings.LastIndex(name, "-"); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
			continue
		}
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		r.Metrics[unit] = v
	}
	return r, true
}
