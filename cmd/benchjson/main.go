// Command benchjson converts `go test -bench` output on stdin into a JSON
// record, so benchmark baselines can be committed and diffed:
//
//	go test -run '^$' -bench MIPS . | go run ./cmd/benchjson -o BENCH_baseline.json
//
// Standard columns (iterations, ns/op, MB/s, B/op, allocs/op) and custom
// b.ReportMetric units (e.g. MIPS) are both captured; non-benchmark lines
// are passed through to stderr so failures stay visible.
//
// -merge appends records from existing JSON files in the same schema, so
// an observability snapshot (cryptojackd -metrics-json, or
// obs.Registry.BenchJSON) can ride along in the committed baseline:
//
//	go test -run '^$' -bench . ./... | go run ./cmd/benchjson -merge obs.json -o BENCH_baseline.json
//
// -diff compares the parsed results against a committed baseline instead
// of emitting JSON: for every record in the baseline whose name matches
// -diff-match and carries the -diff-metric unit, a fresh measurement that
// falls more than -tol (fraction) below the baseline fails the run. Fresh
// records without a baseline counterpart (new benchmarks) pass with a
// note; higher-than-baseline results always pass.
//
//	make bench | go run ./cmd/benchjson -diff BENCH_baseline.json -tol 0.20
//
// The -GOMAXPROCS suffix Go appends to benchmark names is stripped by
// default, so baselines stay portable across host widths. -keep-cpu
// names a regexp of benchmarks where the suffix is the point — a -cpu
// sweep whose per-width records must stay distinct (BenchmarkFleetScaling
// in this repo); matching names keep the suffix verbatim. Sweeps guarded
// this way must pin an explicit -cpu list in the bench target, so the
// names are reproducible on any host.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name       string             `json:"name"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op,omitempty"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	merge := flag.String("merge", "", "comma-separated JSON files (same schema) whose records are appended")
	diff := flag.String("diff", "", "baseline JSON to compare against instead of emitting JSON")
	tol := flag.Float64("tol", 0.20, "with -diff: allowed fractional drop below baseline")
	diffMetric := flag.String("diff-metric", "MIPS", "with -diff: metric unit to compare")
	diffMatch := flag.String("diff-match", "FastEngineMIPS|BlockCacheMIPS", "with -diff: regexp of benchmark names to guard")
	keepCPU := flag.String("keep-cpu", "", "regexp of benchmark names that keep the -GOMAXPROCS suffix (-cpu sweeps)")
	flag.Parse()

	if *keepCPU != "" {
		re, err := regexp.Compile(*keepCPU)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson: -keep-cpu:", err)
			os.Exit(1)
		}
		keepCPURe = re
	}

	results, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if len(results) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	if *diff != "" {
		if err := diffBaseline(results, *diff, *diffMetric, *diffMatch, *tol); err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		return
	}
	if *merge != "" {
		extra, err := mergeFiles(strings.Split(*merge, ","))
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		results = append(results, extra...)
	}
	buf, err := json.MarshalIndent(results, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// diffBaseline is the perf-regression gate: every baseline record whose
// name matches the guard regexp and carries the metric must be matched by
// a fresh measurement within tol of it. Missing fresh measurements fail
// (the guard has rotted); baseline records outside the guard set and
// improvements are ignored.
func diffBaseline(fresh []Result, path, metric, match string, tol float64) error {
	re, err := regexp.Compile(match)
	if err != nil {
		return fmt.Errorf("diff-match: %w", err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("diff: %w", err)
	}
	var baseline []Result
	if err := json.Unmarshal(buf, &baseline); err != nil {
		return fmt.Errorf("diff %s: %w", path, err)
	}
	cur := make(map[string]float64, len(fresh))
	for _, r := range fresh {
		if v, ok := r.Metrics[metric]; ok {
			cur[r.Name] = v
		}
	}
	failed := 0
	checked := 0
	for _, b := range baseline {
		base, ok := b.Metrics[metric]
		if !ok || !re.MatchString(b.Name) {
			continue
		}
		checked++
		got, ok := cur[b.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "FAIL %s: in baseline but not measured\n", b.Name)
			failed++
			continue
		}
		floor := base * (1 - tol)
		verdict := "ok  "
		if got < floor {
			verdict = "FAIL"
			failed++
		}
		fmt.Fprintf(os.Stderr, "%s %s: %s %.1f vs baseline %.1f (floor %.1f)\n",
			verdict, b.Name, metric, got, base, floor)
	}
	for _, r := range fresh {
		if _, ok := r.Metrics[metric]; ok && re.MatchString(r.Name) {
			if !inBaseline(baseline, r.Name) {
				fmt.Fprintf(os.Stderr, "note %s: not in baseline (new benchmark)\n", r.Name)
			}
		}
	}
	if checked == 0 {
		return fmt.Errorf("diff: baseline %s has no %q records matching %q", path, metric, match)
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d guarded benchmarks regressed more than %.0f%%", failed, checked, tol*100)
	}
	fmt.Fprintf(os.Stderr, "all %d guarded benchmarks within %.0f%% of baseline\n", checked, tol*100)
	return nil
}

func inBaseline(baseline []Result, name string) bool {
	for _, b := range baseline {
		if b.Name == name {
			return true
		}
	}
	return false
}

// mergeFiles loads Result records from each JSON file, in order.
func mergeFiles(paths []string) ([]Result, error) {
	var extra []Result
	for _, path := range paths {
		path = strings.TrimSpace(path)
		if path == "" {
			continue
		}
		buf, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("merge: %w", err)
		}
		var records []Result
		if err := json.Unmarshal(buf, &records); err != nil {
			return nil, fmt.Errorf("merge %s: %w", path, err)
		}
		extra = append(extra, records...)
	}
	return extra, nil
}

func parse(f *os.File) ([]Result, error) {
	var results []Result
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "Benchmark") {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		r, ok := parseLine(line)
		if !ok {
			fmt.Fprintln(os.Stderr, line)
			continue
		}
		results = append(results, r)
	}
	return results, sc.Err()
}

// keepCPURe, when set via -keep-cpu, names the benchmarks whose
// -GOMAXPROCS name suffix carries meaning (explicit -cpu sweeps).
var keepCPURe *regexp.Regexp

// parseLine parses "BenchmarkName-8  100  12345 ns/op  67.8 MIPS ...".
func parseLine(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Result{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix, except for -cpu sweeps whose per-width
	// records must stay distinct.
	if i := strings.LastIndex(name, "-"); i > 0 && (keepCPURe == nil || !keepCPURe.MatchString(name)) {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	// Remaining fields come in "<value> <unit>" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Result{}, false
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			r.NsPerOp = v
			continue
		}
		if r.Metrics == nil {
			r.Metrics = map[string]float64{}
		}
		r.Metrics[unit] = v
	}
	return r, true
}
