package main

import "testing"

func TestRunInfectedDetects(t *testing.T) {
	err := run([]string{"-duration", "90s", "-period", "30s", "-threads", "4"})
	if err != nil {
		t.Fatalf("infected run: %v", err)
	}
}

func TestRunCleanIsQuiet(t *testing.T) {
	if err := run([]string{"-clean", "-duration", "60s", "-period", "20s"}); err != nil {
		t.Fatalf("clean run: %v", err)
	}
}

func TestRunZcashRSXO(t *testing.T) {
	err := run([]string{"-coin", "zcash", "-tags", "rsxo", "-duration", "60s", "-period", "20s"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-tags", "bogus", "-duration", "1s"}); err == nil {
		t.Error("bogus tag set accepted")
	}
	if err := run([]string{"-nope"}); err == nil {
		t.Error("unknown flag accepted")
	}
}
