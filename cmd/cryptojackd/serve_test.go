package main

import (
	"encoding/json"
	"io"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"darkarts/internal/core"
	"darkarts/internal/miner"
)

func testSystem(t *testing.T) *core.DefenseSystem {
	t.Helper()
	opts := core.DefaultOptions()
	opts.Kernel.Tunables.Period = 20 * time.Second
	sys, err := core.NewDefenseSystem(opts)
	if err != nil {
		t.Fatal(err)
	}
	miner.SpawnMiner(sys.Kernel(), miner.Monero, 0, 4, 1000)
	sys.Run(time.Minute)
	return sys
}

func TestMetricsEndpointPrometheusFormat(t *testing.T) {
	sys := testSystem(t)
	srv := httptest.NewServer(newMux(sys))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != prometheusContentType {
		t.Errorf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	out := string(body)
	for _, want := range []string{
		"# HELP darkarts_sched_quanta_total",
		"# TYPE darkarts_sched_quanta_total counter",
		"# TYPE darkarts_rsx_delta_per_switch histogram",
		`darkarts_tlb_hits_total{core="0"}`,
		"darkarts_alert_latency_ns_bucket{le=\"+Inf\"}",
		"darkarts_alert_latency_ns_count",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}

func TestStatsEndpointMatchesProcFS(t *testing.T) {
	sys := testSystem(t)
	srv := httptest.NewServer(newMux(sys))
	defer srv.Close()

	resp, err := srv.Client().Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// Same registry, same renderer: the HTTP view must equal the procfs
	// file (the simulation is stopped, so no metric moves between reads).
	procView, err := sys.ProcFS().Read("proc/cryptojack/stats")
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != procView {
		t.Error("/stats and proc/cryptojack/stats render differently")
	}
}

func TestRunWithHTTPAndMetricsJSON(t *testing.T) {
	path := filepath.Join(t.TempDir(), "obs.json")
	err := run([]string{"-duration", "60s", "-period", "20s", "-http", "127.0.0.1:0", "-metrics-json", path})
	if err != nil {
		t.Fatal(err)
	}
	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var records []struct {
		Name    string             `json:"name"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(buf, &records); err != nil {
		t.Fatalf("snapshot is not benchjson-schema JSON: %v", err)
	}
	layers := map[string]bool{}
	for _, r := range records {
		layers[r.Name] = true
	}
	for _, want := range []string{"Obs/kernel", "Obs/cpu", "Obs/mem"} {
		if !layers[want] {
			t.Errorf("snapshot missing record %s (have %v)", want, layers)
		}
	}
}

func TestRunObsDisabled(t *testing.T) {
	if err := run([]string{"-obs=false", "-duration", "60s", "-period", "20s"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-obs=false", "-http", ":0", "-duration", "1s"}); err == nil {
		t.Error("-http with -obs=false accepted")
	}
	if err := run([]string{"-obs=false", "-metrics-json", "x.json", "-duration", "1s"}); err == nil {
		t.Error("-metrics-json with -obs=false accepted")
	}
}
