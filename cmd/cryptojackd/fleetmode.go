package main

// Fleet mode: -fleet N swaps the single DefenseSystem for an
// internal/fleet service running N machines in one process, and layers
// the multi-tenant workload/alert API on the existing /metrics surface.

import (
	"fmt"
	"net"
	"net/http"
	"os"
	"time"

	"darkarts/internal/fleet"
	"darkarts/internal/workload"
)

// fleetFlags carries the fleet-mode slice of cryptojackd's flag set.
type fleetFlags struct {
	machines   int
	shards     int
	round      time.Duration
	minerEvery int

	coin        string
	threads     int
	throttle    float64
	clean       bool
	dur         time.Duration
	tags        string
	threshold   uint64
	period      time.Duration
	obsOn       bool
	httpAddr    string
	metricsJSON string
}

// newFleetMux serves the fleet API plus the /metrics Prometheus surface
// from one mux.
func newFleetMux(f *fleet.Fleet) *http.ServeMux {
	mux := http.NewServeMux()
	if reg := f.Obs(); reg != nil {
		mux.HandleFunc("/metrics", metricsHandler(reg))
	}
	mux.Handle("/api/v1/", f.Handler())
	return mux
}

// serveFleet binds addr and serves the fleet mux in the background.
func serveFleet(addr string, f *fleet.Fleet) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("fleet listener: %w", err)
	}
	srv := &http.Server{Handler: newFleetMux(f)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}

// runFleet is the -fleet N entry point: build the fleet, place resident
// benign workloads on every machine plus miners on every -miner-every'th
// machine, serve the API, run, and summarize.
func runFleet(ff fleetFlags) error {
	cfg := fleet.DefaultConfig(ff.machines)
	cfg.Shards = ff.shards
	if ff.round > 0 {
		cfg.Round = ff.round
	}
	cfg.Machine.TagSet = ff.tags
	cfg.Machine.Kernel.Tunables.Period = ff.period
	if ff.threshold > 0 {
		cfg.Machine.Kernel.Tunables.ThresholdPerMin = ff.threshold
	}
	if !ff.obsOn {
		cfg.Obs = nil
	}
	f, err := fleet.New(cfg)
	if err != nil {
		return err
	}
	if ff.httpAddr != "" {
		srv, addr, err := serveFleet(ff.httpAddr, f)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("fleet API: http://%s/api/v1/fleet (also /workloads /alerts /machines /stats), /metrics (Prometheus)\n", addr)
	}

	eff := f.Config()
	fmt.Printf("fleet: %d machines across %d shards, %s rounds\n",
		eff.Machines, eff.Shards, eff.Round)

	apps := workload.TableIIApps()[:3]
	infected := 0
	for i := 0; i < ff.machines; i++ {
		for _, app := range apps {
			if _, err := f.Submit(fleet.WorkloadSpec{
				Tenant: "resident", Kind: fleet.KindApp, App: app.Name,
				Machine: i, Pin: true,
			}); err != nil {
				return err
			}
		}
		if !ff.clean && ff.minerEvery > 0 && i%ff.minerEvery == 0 {
			if _, err := f.Submit(fleet.WorkloadSpec{
				Tenant: "attacker", Kind: fleet.KindMiner, Coin: ff.coin,
				Throttle: ff.throttle, Threads: ff.threads,
				Machine: i, Pin: true,
			}); err != nil {
				return err
			}
			infected++
		}
	}
	fmt.Printf("placed %d benign apps per machine; %d machines infected with a %s miner\n",
		len(apps), infected, ff.coin)

	fmt.Printf("running %s of simulated time...\n", ff.dur)
	f.Run(ff.dur)

	alerts, _, _ := f.AlertsSince(0, "", 1<<30)
	byMachine := map[int]bool{}
	for _, a := range alerts {
		byMachine[a.Machine] = true
	}
	fmt.Printf("done: %d alert(s) from %d machine(s)\n", len(alerts), len(byMachine))
	for i, a := range alerts {
		if i >= 5 {
			fmt.Printf("  ... %d more\n", len(alerts)-5)
			break
		}
		fmt.Printf("  seq %d machine %d tenant %q: %s\n", a.Seq, a.Machine, a.Tenant, a.Alert)
	}
	if ff.metricsJSON != "" {
		buf, err := f.Obs().BenchJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(ff.metricsJSON, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("metrics snapshot written to %s\n", ff.metricsJSON)
	}
	if ff.clean && len(alerts) > 0 {
		return fmt.Errorf("false positives on a clean fleet")
	}
	return nil
}
