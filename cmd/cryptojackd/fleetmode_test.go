package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

// TestRunFleetDetects: -fleet N runs the whole daemon path (flag parsing,
// placement, rounds, summary) and the infected machines alert.
func TestRunFleetDetects(t *testing.T) {
	dir := t.TempDir()
	snap := filepath.Join(dir, "fleet.json")
	err := run([]string{
		"-fleet", "8", "-miner-every", "4", "-round", "500ms",
		"-duration", "5s", "-period", "2s",
		"-metrics-json", snap,
	})
	if err != nil {
		t.Fatalf("fleet run: %v", err)
	}
	buf, err := os.ReadFile(snap)
	if err != nil {
		t.Fatal(err)
	}
	var results []struct {
		Name    string             `json:"name"`
		Metrics map[string]float64 `json:"metrics"`
	}
	if err := json.Unmarshal(buf, &results); err != nil {
		t.Fatalf("metrics snapshot: %v", err)
	}
	got := map[string]float64{}
	for _, r := range results { // records are Obs/<layer>; metrics keyed by name
		for k, v := range r.Metrics {
			got[k] = v
		}
	}
	if got["fleet_alerts_total"] == 0 {
		t.Errorf("snapshot fleet_alerts_total = %v, want > 0", got["fleet_alerts_total"])
	}
	if got["fleet_rounds_total"] == 0 {
		t.Error("snapshot missing fleet_rounds_total")
	}
}

// TestRunFleetCleanIsQuiet: a clean fleet must raise zero alerts; runFleet
// turns any into an error.
func TestRunFleetCleanIsQuiet(t *testing.T) {
	err := run([]string{
		"-fleet", "6", "-clean", "-round", "500ms",
		"-duration", "4s", "-period", "2s", "-obs=false",
	})
	if err != nil {
		t.Fatalf("clean fleet run: %v", err)
	}
}

// TestRunFleetBadFlags: fleet mode still validates shared flags.
func TestRunFleetBadFlags(t *testing.T) {
	if err := run([]string{"-fleet", "4", "-tags", "bogus", "-duration", "1s"}); err == nil {
		t.Error("bogus tag set accepted in fleet mode")
	}
}
