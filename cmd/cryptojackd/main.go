// Command cryptojackd is the end-to-end demo daemon: it boots the simulated
// machine with the cross-stack defense, populates it with benign desktop
// applications, then (optionally) drops a cryptojacking payload — a
// multi-threaded, throttled Monero or Zcash miner — and streams the alerts
// the OS layer raises.
//
// Usage:
//
//	cryptojackd                       # infected run with defaults
//	cryptojackd -coin zcash -threads 2 -throttle 0.3
//	cryptojackd -clean                # benign-only control run
//	cryptojackd -tags rsxo -threshold 2000000000
//	cryptojackd -http :9090           # serve /metrics and /stats while running
//	cryptojackd -metrics-json obs.json
//
// Observability (OBSERVABILITY.md) is on by default; -obs=false disables
// it entirely.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"darkarts/internal/core"
	"darkarts/internal/kernel"
	"darkarts/internal/miner"
	"darkarts/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "cryptojackd:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("cryptojackd", flag.ContinueOnError)
	coin := fs.String("coin", "monero", "coin to mine: monero or zcash")
	threads := fs.Int("threads", 4, "miner threads (share one tgid)")
	throttle := fs.Float64("throttle", 0, "miner throttle fraction 0..1")
	clean := fs.Bool("clean", false, "benign-only control run (no miner)")
	dur := fs.Duration("duration", 3*time.Minute, "simulated run time")
	tags := fs.String("tags", "rsx", "decoder tag set: rsx, rsxo, rotate-only")
	threshold := fs.Uint64("threshold", 0, "override RSX/min threshold (0 = paper default)")
	period := fs.Duration("period", time.Minute, "monitoring window")
	parallel := fs.Bool("parallel", true, "execute each quantum on per-core worker goroutines")
	serial := fs.Bool("serial", false, "force serial quantum execution (overrides -parallel)")
	obsOn := fs.Bool("obs", true, "record observability metrics (see OBSERVABILITY.md)")
	httpAddr := fs.String("http", "", "serve /metrics (Prometheus) and /stats on this address, e.g. :9090")
	metricsJSON := fs.String("metrics-json", "", "write a benchjson-schema metrics snapshot here at exit")
	fleetN := fs.Int("fleet", 0, "fleet mode: run this many machines as one sharded detection service (FLEET.md)")
	shards := fs.Int("shards", 0, "fleet mode: worker shards (0 = GOMAXPROCS)")
	round := fs.Duration("round", 0, "fleet mode: simulated time per fleet round (0 = 1s)")
	minerEvery := fs.Int("miner-every", 8, "fleet mode: infect every Nth machine (0 = none)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if !*obsOn && (*httpAddr != "" || *metricsJSON != "") {
		return fmt.Errorf("-http and -metrics-json need metrics; drop -obs=false")
	}
	if *fleetN > 0 {
		return runFleet(fleetFlags{
			machines: *fleetN, shards: *shards, round: *round, minerEvery: *minerEvery,
			coin: *coin, threads: *threads, throttle: *throttle, clean: *clean,
			dur: *dur, tags: *tags, threshold: *threshold, period: *period,
			obsOn: *obsOn, httpAddr: *httpAddr, metricsJSON: *metricsJSON,
		})
	}

	opts := core.DefaultOptions()
	opts.TagSet = *tags
	opts.Kernel.Tunables.Period = *period
	opts.Kernel.Parallel = *parallel && !*serial
	if !*obsOn {
		opts.Kernel.Obs = nil
	}
	sys, err := core.NewDefenseSystem(opts)
	if err != nil {
		return err
	}
	if *httpAddr != "" {
		srv, addr, err := serveMetrics(*httpAddr, sys)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("metrics: http://%s/metrics (Prometheus), /stats (text)\n", addr)
	}
	if *threshold > 0 {
		if err := sys.ProcFS().Write(kernel.ProcThreshold, strconv.FormatUint(*threshold, 10)); err != nil {
			return err
		}
	}

	fmt.Printf("machine: %s\n", sys.Machine())
	fmt.Printf("scheduler: %s quantum execution\n", modeName(sys.Parallel()))
	fmt.Printf("tunables: threshold %s RSX/min, window %s\n",
		mustRead(sys, kernel.ProcThreshold), *period)

	for _, app := range workload.TableIIApps()[:5] {
		sys.SpawnApp(app)
		fmt.Printf("spawned benign app %-12s (%s)\n", app.Name, app.Category)
	}

	if !*clean {
		c := miner.Monero
		if *coin == "zcash" {
			c = miner.Zcash
		}
		tasks := miner.SpawnMiner(sys.Kernel(), c, *throttle, *threads, 1000)
		fmt.Printf("spawned %s miner: %d threads (tgid %d), throttle %.0f%%\n",
			c, len(tasks), tasks[0].Tgid, *throttle*100)
		p := miner.EstimateProfit(1 - *throttle)
		fmt.Printf("attacker economics: %.3f XMR/h ($%.2f/h) at this utilization\n",
			p.XMRPerHour, p.USDPerHour)
	}

	sys.OnAlert(func(a kernel.Alert) { fmt.Println(a) })
	fmt.Printf("running %s of simulated time...\n", *dur)
	sys.Run(*dur)

	alerts := sys.Alerts()
	fmt.Printf("done: %d alert(s)\n", len(alerts))
	fmt.Println("\nper-process RSX accounting (top 10):")
	fmt.Print(kernel.FormatTop(sys.Kernel().TopRSX(), 10))
	if *metricsJSON != "" {
		buf, err := sys.Obs().BenchJSON()
		if err != nil {
			return err
		}
		if err := os.WriteFile(*metricsJSON, buf, 0o644); err != nil {
			return err
		}
		fmt.Printf("metrics snapshot written to %s\n", *metricsJSON)
	}
	if *clean && len(alerts) > 0 {
		return fmt.Errorf("false positives on a clean system")
	}
	if !*clean && len(alerts) == 0 {
		fmt.Println("miner evaded the threshold detector (try -tags rsxo, a lower -threshold, or the ML pipeline in examples/mlpipeline)")
	}
	return nil
}

func modeName(parallel bool) string {
	if parallel {
		return "parallel"
	}
	return "serial"
}

func mustRead(sys *core.DefenseSystem, path string) string {
	v, err := sys.ProcFS().Read(path)
	if err != nil {
		return "?"
	}
	return v
}
