package main

// HTTP export surface: -http serves the same registry two ways, the
// Prometheus text exposition on /metrics (scrapeable by a stock
// Prometheus, stdlib only) and the procfs stats view on /stats. Both
// handlers take only the registry's own locks, so they are safe to hit
// while the simulation runs.

import (
	"fmt"
	"net"
	"net/http"

	"darkarts/internal/core"
	"darkarts/internal/kernel"
	"darkarts/internal/obs"
)

// prometheusContentType is the text exposition format version the stdlib
// renderer emits.
const prometheusContentType = "text/plain; version=0.0.4; charset=utf-8"

// metricsHandler serves the registry in Prometheus text exposition format.
func metricsHandler(reg *obs.Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", prometheusContentType)
		_ = reg.WritePrometheus(w)
	}
}

// statsHandler serves the procfs stats view as plain text.
func statsHandler(fs *kernel.ProcFS) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		out, err := fs.Read(kernel.ProcStats)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		fmt.Fprint(w, out)
	}
}

// newMux wires the daemon's HTTP surface.
func newMux(sys *core.DefenseSystem) *http.ServeMux {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", metricsHandler(sys.Obs()))
	mux.HandleFunc("/stats", statsHandler(sys.ProcFS()))
	return mux
}

// serveMetrics binds addr and serves the mux in the background. The
// returned server is closed by the caller; the listener's address is
// printed so ":0" works in tests and scripts.
func serveMetrics(addr string, sys *core.DefenseSystem) (*http.Server, net.Addr, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, nil, fmt.Errorf("metrics listener: %w", err)
	}
	srv := &http.Server{Handler: newMux(sys)}
	go func() { _ = srv.Serve(ln) }()
	return srv, ln.Addr(), nil
}
