// Command characterize runs the instruction-mix characterization of
// Section VI-A on any built-in workload: it executes the workload on the
// simulated processor with per-opcode counters (the Intel-SDE role in the
// paper's methodology) and prints per-1B-instruction class counts plus the
// top opcodes.
//
// Usage:
//
//	characterize -list
//	characterize -workload sha3 -window 20000000
//	characterize -workload libquantum -top 15
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"darkarts/internal/cpu"
	"darkarts/internal/isa"
	"darkarts/internal/microcode"
	"darkarts/internal/trace"
	"darkarts/internal/workload"
)

func builtinPrograms() map[string]func() *isa.Program {
	progs := map[string]func() *isa.Program{
		"sha2":    workload.SHA2Program,
		"sha3":    workload.SHA3Program,
		"aes":     workload.AESProgram,
		"blake2b": workload.Blake2bProgram,
	}
	for _, p := range workload.SPEC2K6() {
		p := p
		progs[p.Name] = p.Program
	}
	return progs
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "characterize:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("characterize", flag.ContinueOnError)
	list := fs.Bool("list", false, "list workloads")
	name := fs.String("workload", "sha3", "workload name")
	window := fs.Uint64("window", 8_000_000, "instructions to execute")
	top := fs.Int("top", 10, "top-N opcodes to print")
	if err := fs.Parse(args); err != nil {
		return err
	}

	progs := builtinPrograms()
	if *list {
		names := make([]string, 0, len(progs))
		for n := range progs {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			fmt.Println(n)
		}
		return nil
	}

	build, ok := progs[*name]
	if !ok {
		return fmt.Errorf("unknown workload %q (use -list)", *name)
	}
	prog := build()

	res, err := workload.CharacterizeProgram(*name, prog, *window)
	if err != nil {
		return err
	}
	fmt.Printf("workload %s: %d instructions executed\n", *name, res.Executed)
	fmt.Printf("per 1B instructions:\n")
	fmt.Printf("  SL  %12d\n  SR  %12d\n  XOR %12d\n  RL  %12d\n  RR  %12d\n  OR  %12d\n",
		res.SL, res.SR, res.XOR, res.RL, res.RR, res.OR)
	fmt.Printf("  RSX %12d   RSXO %12d\n", res.RSX(), res.RSXO())

	// Top opcodes need a recorder pass (kept separate from the counter
	// path so the fast engine stays fast by default).
	cfg := cpu.DefaultConfig()
	cfg.Cores = 1
	machine, err := cpu.New(cfg)
	if err != nil {
		return err
	}
	machine.InstallTagTable(microcode.RSXO())
	ctx, err := cpu.NewContext(prog, machine.Memory(), 0x100_0000)
	if err != nil {
		return err
	}
	rec := trace.NewRecorder(false)
	core := machine.Core(0)
	core.SetObserver(rec)
	core.LoadContext(ctx)
	short := *window / 4
	if short > 2_000_000 {
		short = 2_000_000
	}
	var done uint64
	for done < short && !ctx.Halted {
		done += core.Run(short - done)
		if ctx.Halted && ctx.Fault == nil {
			ctx, err = cpu.NewContext(prog, machine.Memory(), 0x100_0000)
			if err != nil {
				return err
			}
			core.LoadContext(ctx)
		}
	}
	fmt.Printf("top opcodes (from a %d-instruction trace):\n", rec.Total())
	for _, oc := range rec.TopOps(*top) {
		fmt.Printf("  %-6s %10d (%.1f%%)\n", oc.Op, oc.Count, 100*float64(oc.Count)/float64(rec.Total()))
	}
	return nil
}
