package main

import "testing"

func TestRunList(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSHA3(t *testing.T) {
	if err := run([]string{"-workload", "sha3", "-window", "300000"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSPEC(t *testing.T) {
	if err := run([]string{"-workload", "povray", "-window", "200000", "-top", "5"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownWorkload(t *testing.T) {
	if err := run([]string{"-workload", "doom"}); err == nil {
		t.Error("unknown workload accepted")
	}
}
