package darkarts_test

// FLEET.md is the architecture contract for the fleet service. This test
// ties the doc to the code: every API route must be documented AND served,
// every WorkloadSpec JSON field and catalog program must be named, and
// every file the doc's file map points at must exist.

import (
	"net/http"
	"net/http/httptest"
	"os"
	"reflect"
	"regexp"
	"strings"
	"testing"

	"darkarts/internal/fleet"
)

func TestFleetDocCoversAPIAndTypes(t *testing.T) {
	doc, err := os.ReadFile("FLEET.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)

	f, err := fleet.New(fleet.DefaultConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()

	// Every documented route is served (not a 404), and every served route
	// is documented. The doc's route table is the lines containing
	// `/api/v1/...` in backticks.
	routes := []string{"/api/v1/fleet", "/api/v1/workloads", "/api/v1/alerts", "/api/v1/machines", "/api/v1/stats"}
	for _, route := range routes {
		if !strings.Contains(text, "`"+route+"`") {
			t.Errorf("FLEET.md does not document route %q", route)
		}
		resp, err := http.Get(srv.URL + route)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode == http.StatusNotFound {
			t.Errorf("documented route %q is not served", route)
		}
	}
	docRoutes := regexp.MustCompile("`(/api/v1/[a-z]+)`").FindAllStringSubmatch(text, -1)
	for _, m := range docRoutes {
		found := false
		for _, r := range routes {
			found = found || r == m[1]
		}
		if !found {
			t.Errorf("FLEET.md documents unknown route %q", m[1])
		}
	}

	// Every WorkloadSpec JSON field is in the doc's spec table.
	st := reflect.TypeOf(fleet.WorkloadSpec{})
	for i := 0; i < st.NumField(); i++ {
		tag := strings.Split(st.Field(i).Tag.Get("json"), ",")[0]
		if tag == "" || tag == "-" {
			continue
		}
		if !strings.Contains(text, "`"+tag+"`") {
			t.Errorf("FLEET.md does not document WorkloadSpec field %q", tag)
		}
	}

	// Catalog programs are enumerable from the doc.
	for _, name := range f.Catalog() {
		if !strings.Contains(text, "`"+name+"`") {
			t.Errorf("FLEET.md does not name catalog program %q", name)
		}
	}

	// The workload kinds.
	for _, kind := range []string{fleet.KindApp, fleet.KindMiner, fleet.KindProgram} {
		if !strings.Contains(text, "`"+kind+"`") {
			t.Errorf("FLEET.md does not document workload kind %q", kind)
		}
	}

	// Fleet-mode flags.
	for _, flag := range []string{"-fleet", "-shards", "-round", "-miner-every", "-clean"} {
		if !strings.Contains(text, flag) {
			t.Errorf("FLEET.md does not mention the %s flag", flag)
		}
	}

	// The file map points at real files.
	for _, m := range regexp.MustCompile("`((?:internal|cmd)/[a-z/]+\\.go)`").FindAllStringSubmatch(text, -1) {
		if _, err := os.Stat(m[1]); err != nil {
			t.Errorf("FLEET.md file map entry %q: %v", m[1], err)
		}
	}

	// The doc cross-references stay valid.
	for _, ref := range []string{"OBSERVABILITY.md", "README.md", "DESIGN.md"} {
		if !strings.Contains(text, ref) {
			t.Errorf("FLEET.md lost its reference to %s", ref)
		}
		if _, err := os.Stat(ref); err != nil {
			t.Errorf("FLEET.md references %s: %v", ref, err)
		}
	}
}
