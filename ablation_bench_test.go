package darkarts_test

import (
	"testing"
	"time"

	"darkarts/internal/core"
	"darkarts/internal/cpu"
	"darkarts/internal/cryptoalg"
	"darkarts/internal/evasion"
	"darkarts/internal/isa"
	"darkarts/internal/kernel"
	"darkarts/internal/miner"
	"darkarts/internal/workload"
)

// Ablation benchmarks for the design choices called out in DESIGN.md.
// Each reports its outcome as metrics (1 = detected / value) so `go test
// -bench Ablation` doubles as the ablation record.

// BenchmarkAblationCounterGranularity compares a rotate-only hardware
// counter against the paper's aggregated RSX counter when the miner's
// rotates are rewritten into shift|or sequences (equations 6a/6b).
func BenchmarkAblationCounterGranularity(b *testing.B) {
	run := func(tagSet string) float64 {
		opts := core.DefaultOptions()
		opts.TagSet = tagSet
		opts.Kernel.Tunables.Period = 5 * time.Second
		sys, err := core.NewDefenseSystem(opts)
		if err != nil {
			b.Fatal(err)
		}
		prof := workload.AppProfile{
			Name: "obf-miner", Category: workload.CatCryptoFunc,
			RotatePerHour: 0,
			ShiftPerHour:  (10.2 + 2*83.1) * 1e9,
			XORPerHour:    248.3 * 1e9,
			ORPerHour:     (60 + 83.1) * 1e9,
			InstrPerHour:  1800e9,
			Seed:          1,
		}
		sys.Kernel().Spawn(prof.Name, 1000, workload.NewAppWorkload(prof))
		if sys.RunUntilAlert(30 * time.Second) {
			return 1
		}
		return 0
	}
	var rotOnly, rsx float64
	for i := 0; i < b.N; i++ {
		rotOnly = run("rotate-only")
		rsx = run("rsx")
	}
	b.ReportMetric(rotOnly, "rotate_only_detected")
	b.ReportMetric(rsx, "rsx_detected")
}

// BenchmarkAblationTgidAggregation compares thread-group aggregation
// against per-process thresholds for a 4-way split miner.
func BenchmarkAblationTgidAggregation(b *testing.B) {
	run := func(shared bool) float64 {
		machine, err := cpu.New(cpu.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		cfg := kernel.DefaultConfig()
		cfg.Tunables.Period = 5 * time.Second
		k := kernel.New(machine, cfg)
		if shared {
			miner.SpawnMiner(k, miner.Monero, 0, 4, 1000)
		} else {
			for i := 0; i < 4; i++ {
				k.Spawn("split", 1000, miner.NewWorkload(miner.Monero, 0, 4, int64(i)))
			}
		}
		if k.RunUntilAlert(30 * time.Second) {
			return 1
		}
		return 0
	}
	var withTgid, without float64
	for i := 0; i < b.N; i++ {
		withTgid = run(true)
		without = run(false)
	}
	b.ReportMetric(withTgid, "tgid_aggregated_detected")
	b.ReportMetric(without, "per_process_detected")
}

// BenchmarkAblationSamplingFrequency measures alert latency as the
// scheduler quantum (and therefore the context-switch sampling frequency)
// grows. The window mechanism dominates latency, so sampling at coarser
// quanta must not delay detection materially — the paper's argument for
// piggy-backing on context switches rather than adding a dedicated timer.
func BenchmarkAblationSamplingFrequency(b *testing.B) {
	latency := func(slice time.Duration) float64 {
		machine, err := cpu.New(cpu.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		cfg := kernel.DefaultConfig()
		cfg.TimeSlice = slice
		cfg.Tunables.Period = 4 * time.Second
		k := kernel.New(machine, cfg)
		miner.SpawnMiner(k, miner.Monero, 0, 4, 1000)
		if !k.RunUntilAlert(60 * time.Second) {
			return -1
		}
		return k.Alerts()[0].Time.Seconds()
	}
	var fast, slow float64
	for i := 0; i < b.N; i++ {
		fast = latency(4 * time.Millisecond)
		slow = latency(64 * time.Millisecond)
	}
	b.ReportMetric(fast, "alert_s_4ms_quantum")
	b.ReportMetric(slow, "alert_s_64ms_quantum")
}

// BenchmarkAblationMonitoringWindow measures the window's burst-rejection:
// a one-shot RSX burst versus a sustained miner across window lengths.
func BenchmarkAblationMonitoringWindow(b *testing.B) {
	type burstWL struct{ kernel.FuncWorkload }
	run := func(period time.Duration, sustained bool) float64 {
		machine, err := cpu.New(cpu.DefaultConfig())
		if err != nil {
			b.Fatal(err)
		}
		cfg := kernel.DefaultConfig()
		cfg.Tunables.Period = period
		k := kernel.New(machine, cfg)
		if sustained {
			miner.SpawnMiner(k, miner.Monero, 0, 4, 1000)
		} else {
			fired := false
			k.Spawn("burst", 1000, &kernel.FuncWorkload{F: func(c *cpu.Core, d time.Duration) bool {
				if !fired {
					// Half the per-window threshold, all at once.
					c.Counters().AddRSX(uint64(2.5e9 * period.Minutes() / 2))
					fired = true
				}
				return false
			}})
		}
		if k.RunUntilAlert(4 * period) {
			return 1
		}
		return 0
	}
	var _ = burstWL{}
	var burstShort, burstLong, minerShort, minerLong float64
	for i := 0; i < b.N; i++ {
		burstShort = run(2*time.Second, false)
		burstLong = run(10*time.Second, false)
		minerShort = run(2*time.Second, true)
		minerLong = run(10*time.Second, true)
	}
	b.ReportMetric(burstShort, "burst_detected_2s")
	b.ReportMetric(burstLong, "burst_detected_10s")
	b.ReportMetric(minerShort, "miner_detected_2s")
	b.ReportMetric(minerLong, "miner_detected_10s")
}

// BenchmarkAblationObfuscationCost measures the attacker's side of the
// obfuscation trade: instructions per keccakf permutation before and after
// the rotate rewrite — the "uneconomical" argument from the threat model.
func BenchmarkAblationObfuscationCost(b *testing.B) {
	count := func(p *isa.Program, stateOff int64) float64 {
		cfg := cpu.DefaultConfig()
		cfg.Cores = 1
		machine, err := cpu.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		ctx, err := cpu.NewContext(p, machine.Memory(), 0x100_0000)
		if err != nil {
			b.Fatal(err)
		}
		machine.Core(0).LoadContext(ctx)
		for !ctx.Halted {
			machine.Core(0).Run(1 << 22)
		}
		return float64(machine.Core(0).Counters().Retired())
	}
	prog, lay := buildKeccak(b)
	obf, err := evasion.ObfuscateRotates(prog, isa.R8, isa.R9)
	if err != nil {
		b.Fatal(err)
	}
	var plain, rewritten float64
	for i := 0; i < b.N; i++ {
		plain = count(prog, lay)
		rewritten = count(obf, lay)
	}
	b.ReportMetric(plain, "insts_native")
	b.ReportMetric(rewritten, "insts_obfuscated")
	b.ReportMetric(100*(rewritten-plain)/plain, "slowdown_pct")
}

// BenchmarkAblationNextLinePrefetch measures the I-side prefetcher's
// effect on a large straight-line program (the synthetic SPEC mixes have
// 10k-instruction bodies that overflow the 32KB L1I).
func BenchmarkAblationNextLinePrefetch(b *testing.B) {
	run := func(prefetch bool) float64 {
		cfg := cpu.DefaultConfig()
		cfg.Cores = 1
		cfg.Mode = cpu.ModeDetailed
		cfg.MemCfg.NextLinePrefetch = prefetch
		machine, err := cpu.New(cfg)
		if err != nil {
			b.Fatal(err)
		}
		p, _ := workload.SPECProfileByName("gcc")
		ctx, err := cpu.NewContext(p.Program(), machine.Memory(), 0x100_0000)
		if err != nil {
			b.Fatal(err)
		}
		machine.Core(0).LoadContext(ctx)
		machine.Core(0).Run(400_000)
		return machine.Core(0).Counters().IPC()
	}
	var off, on float64
	for i := 0; i < b.N; i++ {
		off = run(false)
		on = run(true)
	}
	b.ReportMetric(off, "ipc_no_prefetch")
	b.ReportMetric(on, "ipc_prefetch")
}

func buildKeccak(b *testing.B) (*isa.Program, int64) {
	b.Helper()
	prog, lay := cryptoalg.BuildKeccakFProgram()
	return prog, lay.State
}
