module darkarts

go 1.22
