package darkarts_test

// OBSERVABILITY.md is the contract for the operations surface: every
// metric a default system registers must be documented there by name.
// This test builds a real kernel plus an instrumented ML pipeline,
// collects the registered base names, and greps the doc.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	"darkarts/internal/core"
	"darkarts/internal/detect"
	"darkarts/internal/fleet"
	"darkarts/internal/miner"
	"darkarts/internal/obs"
)

func TestObservabilityDocCoversAllMetrics(t *testing.T) {
	doc, err := os.ReadFile("OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)

	sys, err := core.NewDefenseSystem(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	miner.SpawnMiner(sys.Kernel(), miner.Monero, 0, 2, 1000)
	sys.Run(2 * time.Second)

	// Attach the detect-layer metrics the same registry would carry in an
	// ML deployment.
	x := [][]float64{{0, 0, 0}, {5, 5, 5}, {0.1, 0, 0.2}, {5, 4.8, 5.1}}
	y := []int{-1, 1, -1, 1}
	p := &detect.Pipeline{Components: 2, Model: &detect.SVM{}, Obs: sys.Obs()}
	if err := p.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	p.Predict(x[0])

	names := sys.Obs().Names()
	if len(names) == 0 {
		t.Fatal("registry is empty")
	}
	for _, name := range names {
		if !strings.Contains(text, "`"+name+"`") && !strings.Contains(text, "`"+name+"{") {
			t.Errorf("OBSERVABILITY.md does not document metric %q", name)
		}
	}

	// The layer names the doc organizes by must match the code's.
	for _, layer := range []string{obs.LayerCPU, obs.LayerMem, obs.LayerKernel, obs.LayerDetect, obs.LayerFleet} {
		if !strings.Contains(text, "`"+layer+"`") {
			t.Errorf("OBSERVABILITY.md missing a section for layer %q", layer)
		}
	}
}

// TestObservabilityDocCoversFleetMetrics holds the same contract for the
// fleet-scope registry: run a small fleet (including API traffic so the
// lazily registered per-route counters exist) and grep the doc for every
// name it registers.
func TestObservabilityDocCoversFleetMetrics(t *testing.T) {
	doc, err := os.ReadFile("OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)

	cfg := fleet.DefaultConfig(4)
	cfg.Round = 250 * time.Millisecond
	cfg.Machine.Kernel.Tunables.Period = time.Second
	f, err := fleet.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(f.Handler())
	defer srv.Close()
	for i := 0; i < cfg.Machines; i++ {
		spec, _ := json.Marshal(map[string]any{
			"tenant": "t", "kind": "miner", "machine": i, "pin": true,
		})
		resp, err := http.Post(srv.URL+"/api/v1/workloads", "application/json", bytes.NewReader(spec))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}
	f.Run(2 * time.Second)
	for _, route := range []string{"/api/v1/fleet", "/api/v1/alerts", "/api/v1/machines", "/api/v1/stats"} {
		resp, err := http.Get(srv.URL + route)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
	}

	names := f.Obs().Names()
	if len(names) == 0 {
		t.Fatal("fleet registry is empty")
	}
	for _, name := range names {
		if !strings.Contains(text, "`"+name+"`") && !strings.Contains(text, "`"+name+"{") {
			t.Errorf("OBSERVABILITY.md does not document fleet metric %q", name)
		}
	}
}
