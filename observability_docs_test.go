package darkarts_test

// OBSERVABILITY.md is the contract for the operations surface: every
// metric a default system registers must be documented there by name.
// This test builds a real kernel plus an instrumented ML pipeline,
// collects the registered base names, and greps the doc.

import (
	"os"
	"strings"
	"testing"
	"time"

	"darkarts/internal/core"
	"darkarts/internal/detect"
	"darkarts/internal/miner"
	"darkarts/internal/obs"
)

func TestObservabilityDocCoversAllMetrics(t *testing.T) {
	doc, err := os.ReadFile("OBSERVABILITY.md")
	if err != nil {
		t.Fatal(err)
	}
	text := string(doc)

	sys, err := core.NewDefenseSystem(core.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	miner.SpawnMiner(sys.Kernel(), miner.Monero, 0, 2, 1000)
	sys.Run(2 * time.Second)

	// Attach the detect-layer metrics the same registry would carry in an
	// ML deployment.
	x := [][]float64{{0, 0, 0}, {5, 5, 5}, {0.1, 0, 0.2}, {5, 4.8, 5.1}}
	y := []int{-1, 1, -1, 1}
	p := &detect.Pipeline{Components: 2, Model: &detect.SVM{}, Obs: sys.Obs()}
	if err := p.Fit(x, y); err != nil {
		t.Fatal(err)
	}
	p.Predict(x[0])

	names := sys.Obs().Names()
	if len(names) == 0 {
		t.Fatal("registry is empty")
	}
	for _, name := range names {
		if !strings.Contains(text, "`"+name+"`") && !strings.Contains(text, "`"+name+"{") {
			t.Errorf("OBSERVABILITY.md does not document metric %q", name)
		}
	}

	// The layer names the doc organizes by must match the code's.
	for _, layer := range []string{obs.LayerCPU, obs.LayerMem, obs.LayerKernel, obs.LayerDetect} {
		if !strings.Contains(text, "`"+layer+"`") {
			t.Errorf("OBSERVABILITY.md missing a section for layer %q", layer)
		}
	}
}
